//! Durable campaign checkpoints: versioned, digest-verified, atomic,
//! self-healing.
//!
//! Every artifact (a characterization, a cell outcome, a finished
//! experiment's output) is one file under the checkpoint directory,
//! wrapped in an [`Envelope`] carrying a format version and an FNV-1a
//! digest of the payload. Writes go through a temp file and an atomic
//! rename, so a `kill -9` mid-write leaves either the previous complete
//! checkpoint or none — never a torn file. Loads verify version and
//! digest and treat *any* mismatch (truncated file, flipped byte, future
//! format) as a cache miss: the artifact is recomputed, never trusted.
//!
//! On top of that, the store heals rather than aborts:
//!
//! * a corrupt checkpoint found on load is **quarantined** — renamed to
//!   `*.json.quarantined` (kept for forensics, invisible to the store) —
//!   and recomputed;
//! * a failed write is retried with bounded, deterministically jittered
//!   backoff, then **degrades to an in-memory overlay**: the campaign
//!   still completes and can replay the artifact within the process, it
//!   just cannot resume it after a crash;
//! * every failure is counted in the store's
//!   [`StoreHealth`] so campaigns can surface — and `--strict-store` can
//!   gate on — exactly what went wrong.
//!
//! All write and load paths are instrumented for
//! [`simcore::chaos`] host-fault injection, which is how the recovery
//! behavior above is actually tested (see `tests/chaos.rs`).

use ioeval_core::campaign::{CellOutcome, CellStore, StoreHealth};
use ioeval_core::perf_table::PerfTableSet;
use serde::{Deserialize, Serialize};
use simcore::chaos::{self, ChaosAction, ChaosSite};
use simcore::SplitMix64;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Bump when the on-disk layout of any payload changes; older checkpoints
/// are then recomputed instead of misparsed.
pub const CHECKPOINT_VERSION: u32 = 1;

/// 64-bit FNV-1a — tiny, dependency-free, and plenty to catch truncation
/// and bit-flips (this is integrity, not authentication).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The on-disk wrapper around every checkpointed payload.
#[derive(Serialize, Deserialize)]
struct Envelope {
    version: u32,
    digest: String,
    payload: String,
}

/// Bounded-retry policy for checkpoint writes. The jitter is drawn from a
/// [`SplitMix64`] seeded by `(jitter_seed, key, attempt)` — deterministic
/// per write attempt regardless of thread interleaving, so chaos runs
/// replay exactly.
#[derive(Clone, Copy, Debug)]
pub struct WriteRetry {
    /// Total write attempts per save (first try included). At least 1.
    pub attempts: u32,
    /// Base backoff before the first retry; doubles per retry, plus
    /// jitter in `[0, backoff)`.
    pub backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for WriteRetry {
    fn default() -> WriteRetry {
        WriteRetry {
            attempts: 3,
            backoff: Duration::from_micros(500),
            jitter_seed: 0x636b_7074, // "ckpt"
        }
    }
}

/// A directory of digest-verified checkpoint files.
pub struct CheckpointDir {
    root: PathBuf,
    retry: WriteRetry,
    /// Payloads whose writes exhausted their retries: the store degrades
    /// to memory rather than losing the artifact mid-campaign. Entries
    /// shadow whatever (possibly stale or torn) file is on disk.
    overlay: Mutex<HashMap<String, String>>,
    serialize_errors: AtomicU64,
    write_retries: AtomicU64,
    write_failures: AtomicU64,
    quarantined: AtomicU64,
    degraded: AtomicBool,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<CheckpointDir> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CheckpointDir {
            root,
            retry: WriteRetry::default(),
            overlay: Mutex::new(HashMap::new()),
            serialize_errors: AtomicU64::new(0),
            write_retries: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
        })
    }

    /// Replaces the write-retry policy (tests tighten the backoff).
    pub fn with_retry(mut self, retry: WriteRetry) -> CheckpointDir {
        self.retry = retry;
        self
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of the host-side failure counters.
    pub fn health(&self) -> StoreHealth {
        StoreHealth {
            serialize_errors: self.serialize_errors.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }

    fn file_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}.json", sanitize(key)))
    }

    /// Atomically checkpoints `payload` under `key`: the envelope is
    /// written to a temp file first and renamed into place, so an
    /// interrupted save never corrupts an existing checkpoint. A failed
    /// write is retried with seeded backoff; exhausting the retries
    /// degrades this artifact to the in-memory overlay — the campaign
    /// still completes and replays it in-process, it just cannot resume
    /// it after a crash.
    pub fn save(&self, key: &str, payload: &str) {
        let envelope = Envelope {
            version: CHECKPOINT_VERSION,
            digest: format!("{:016x}", fnv1a64(payload.as_bytes())),
            payload: payload.to_string(),
        };
        let Some(bytes) = self.lossy_serialize(key, serde_json::to_string(&envelope)) else {
            return;
        };
        let target = self.file_for(key);
        let tmp = self.root.join(format!(".{}.tmp", sanitize(key)));
        let attempts = self.retry.attempts.max(1);
        for attempt in 0..attempts {
            match self.write_attempt(&tmp, &target, bytes.as_bytes()) {
                Ok(()) => {
                    // A durable copy exists again; drop any degraded one.
                    self.overlay.lock().expect("overlay lock").remove(key);
                    return;
                }
                Err(e) => {
                    let _ = fs::remove_file(&tmp);
                    if attempt + 1 == attempts {
                        self.write_failures.fetch_add(1, Ordering::Relaxed);
                        self.degraded.store(true, Ordering::Relaxed);
                        self.overlay
                            .lock()
                            .expect("overlay lock")
                            .insert(key.to_string(), payload.to_string());
                        eprintln!(
                            "[checkpoint] cannot save {} after {attempts} attempts \
                             (kept in memory; a resumed run recomputes it): {e}",
                            target.display()
                        );
                    } else {
                        self.write_retries.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "[checkpoint] save {} failed (attempt {}/{attempts}), retrying: {e}",
                            target.display(),
                            attempt + 1
                        );
                        std::thread::sleep(self.backoff_delay(key, attempt));
                    }
                }
            }
        }
    }

    /// One physical write attempt, or an injected chaos failure. The
    /// `Torn` action writes a prefix of the bytes *directly to the target
    /// file* — deliberately bypassing the temp+rename protocol — because
    /// that is the damage pattern (in-place torn write, e.g. by a dying
    /// NFS client) the digest-verified loader must survive.
    fn write_attempt(&self, tmp: &Path, target: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some(action) = chaos::decide(ChaosSite::CheckpointWrite) {
            return Err(match action {
                ChaosAction::Torn { sixteenths } => {
                    let cut = bytes.len() * sixteenths as usize / 16;
                    let _ = fs::write(target, &bytes[..cut]);
                    io::Error::other("injected torn checkpoint write")
                }
                ChaosAction::Enospc => io::Error::other("injected ENOSPC: no space left on device"),
                ChaosAction::Fail => io::Error::other("injected checkpoint write failure"),
            });
        }
        fs::write(tmp, bytes).and_then(|()| fs::rename(tmp, target))
    }

    /// Exponential backoff (base × 2^attempt) plus deterministic jitter in
    /// `[0, base)` drawn from `(jitter_seed, key, attempt)`.
    fn backoff_delay(&self, key: &str, attempt: u32) -> Duration {
        let base = self.retry.backoff.max(Duration::from_nanos(1));
        let mut rng =
            SplitMix64::new(self.retry.jitter_seed ^ fnv1a64(key.as_bytes()) ^ attempt as u64);
        let jitter = Duration::from_nanos(rng.next_below(base.as_nanos().max(1) as u64));
        base.saturating_mul(1 << attempt.min(16)) + jitter
    }

    /// Loads and verifies the checkpoint under `key`. Missing, truncated,
    /// corrupt, or version-mismatched files all return `None`; a present
    /// but corrupt file is additionally quarantined (renamed aside) so the
    /// damage is kept for forensics and never re-read. Artifacts that
    /// degraded to the in-memory overlay replay from there.
    pub fn load(&self, key: &str) -> Option<String> {
        if let Some(v) = self.overlay.lock().expect("overlay lock").get(key) {
            return Some(v.clone());
        }
        let path = self.file_for(key);
        let text = fs::read_to_string(&path).ok()?;
        match verify_envelope(&text) {
            Some(payload) => Some(payload),
            None => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Moves a corrupt checkpoint aside as `*.json.quarantined` (which
    /// [`CheckpointDir::len`] ignores), falling back to deletion if even
    /// the rename fails. Either way the corrupt bytes can never be
    /// re-served.
    fn quarantine(&self, path: &Path) {
        let aside = path.with_extension("json.quarantined");
        if fs::rename(path, &aside).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "[checkpoint] quarantined corrupt checkpoint {} (recomputing)",
            path.display()
        );
    }

    /// Number of checkpoint files present (tests and progress reporting).
    /// Quarantined files do not count.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.root)
            .map(|d| {
                d.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no checkpoints exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Store failures are uniformly non-fatal: a serialization error is
    /// counted, logged against the key it would have checkpointed, and the
    /// campaign continues (it just cannot resume that artifact), matching
    /// the behavior of exhausted I/O retries in [`CheckpointDir::save`].
    fn lossy_serialize(
        &self,
        key: &str,
        result: Result<String, serde_json::Error>,
    ) -> Option<String> {
        let result = match result {
            Ok(_) if chaos::decide(ChaosSite::StoreSerialize).is_some() => {
                Err("injected serialization failure".to_string())
            }
            Ok(s) => Ok(s),
            Err(e) => Err(e.to_string()),
        };
        match result {
            Ok(s) => Some(s),
            Err(e) => {
                self.serialize_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("[checkpoint] cannot serialize {key} (continuing uncheckpointed): {e}");
                None
            }
        }
    }
}

/// Parses and digest-verifies one envelope; `None` means corrupt, torn,
/// or from a different format version.
fn verify_envelope(text: &str) -> Option<String> {
    let envelope: Envelope = serde_json::from_str(text).ok()?;
    if envelope.version != CHECKPOINT_VERSION {
        return None;
    }
    if envelope.digest != format!("{:016x}", fnv1a64(envelope.payload.as_bytes())) {
        return None;
    }
    Some(envelope.payload)
}

/// Keys become file names; keep them portable.
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// A [`CellStore`] persisting every artifact to a [`CheckpointDir`] as it
/// completes, so a killed campaign resumes from the last finished cell.
pub struct CampaignStore {
    dir: CheckpointDir,
}

impl CampaignStore {
    /// A store over `dir`.
    pub fn new(dir: CheckpointDir) -> CampaignStore {
        CampaignStore { dir }
    }

    /// Opens (creating if needed) a store at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<CampaignStore> {
        Ok(CampaignStore {
            dir: CheckpointDir::new(path)?,
        })
    }

    /// The underlying checkpoint directory.
    pub fn dir(&self) -> &CheckpointDir {
        &self.dir
    }

    fn tables_key(cluster: &str, config: &str) -> String {
        format!("tables-{cluster}-{config}")
    }

    fn cell_key(app: &str, config: &str) -> String {
        format!("cell-{app}-{config}")
    }
}

impl CellStore for CampaignStore {
    fn load_tables(&mut self, cluster: &str, config: &str) -> Option<PerfTableSet> {
        let payload = self.dir.load(&Self::tables_key(cluster, config))?;
        PerfTableSet::from_json(&payload).ok()
    }

    fn save_tables(&mut self, tables: &PerfTableSet) {
        self.dir.save(
            &Self::tables_key(&tables.cluster, &tables.config),
            &tables.to_json(),
        );
    }

    fn load_outcome(&mut self, app: &str, config: &str) -> Option<CellOutcome> {
        let payload = self.dir.load(&Self::cell_key(app, config))?;
        serde_json::from_str(&payload).ok()
    }

    fn save_outcome(&mut self, outcome: &CellOutcome) {
        let key = Self::cell_key(outcome.app(), outcome.config());
        if let Some(payload) = self
            .dir
            .lossy_serialize(&key, serde_json::to_string_pretty(outcome))
        {
            self.dir.save(&key, &payload);
        }
    }

    fn health(&self) -> StoreHealth {
        self.dir.health()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ioeval-ckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = CheckpointDir::new(scratch("roundtrip")).unwrap();
        assert!(dir.is_empty());
        dir.save("alpha", "payload one");
        assert_eq!(dir.load("alpha").as_deref(), Some("payload one"));
        assert_eq!(dir.len(), 1);
        // Overwrite is atomic and replaces.
        dir.save("alpha", "payload two");
        assert_eq!(dir.load("alpha").as_deref(), Some("payload two"));
        assert_eq!(dir.len(), 1);
        assert_eq!(dir.health(), StoreHealth::default());
    }

    #[test]
    fn truncated_and_corrupt_files_are_quarantined_cache_misses() {
        let dir = CheckpointDir::new(scratch("corrupt")).unwrap();
        dir.save("x", "the payload");
        let path = dir.file_for("x");

        // Truncate: torn write.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(dir.load("x"), None);
        // The torn file was quarantined: moved aside, not re-readable, and
        // no longer counted as a checkpoint.
        assert_eq!(dir.len(), 0);
        assert!(path.with_extension("json.quarantined").exists());
        assert_eq!(dir.health().quarantined, 1);

        // Restore, then flip a payload byte: digest mismatch.
        fs::write(&path, &full).unwrap();
        let tampered = String::from_utf8(full.clone())
            .unwrap()
            .replace("the payload", "thE payload");
        fs::write(&path, tampered).unwrap();
        assert_eq!(dir.load("x"), None);

        // Unknown future version: recompute rather than misparse.
        fs::write(
            &path,
            String::from_utf8(full).unwrap().replacen(
                &format!("\"version\":{CHECKPOINT_VERSION}"),
                "\"version\":999",
                1,
            ),
        )
        .unwrap();
        assert_eq!(dir.load("x"), None);
        assert_eq!(dir.health().quarantined, 3);

        // A fresh save heals the key completely.
        dir.save("x", "recomputed");
        assert_eq!(dir.load("x").as_deref(), Some("recomputed"));
    }

    #[test]
    fn missing_key_is_none() {
        let dir = CheckpointDir::new(scratch("missing")).unwrap();
        assert_eq!(dir.load("nope"), None);
        assert_eq!(dir.health().quarantined, 0, "missing is not corrupt");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let dir = CheckpointDir::new(scratch("backoff")).unwrap();
        let a = dir.backoff_delay("k", 0);
        assert_eq!(a, dir.backoff_delay("k", 0), "same key+attempt, same delay");
        assert_ne!(
            a,
            dir.backoff_delay("k2", 0),
            "jitter differs across keys (no thundering herd)"
        );
        let base = WriteRetry::default().backoff;
        // base * 2^attempt <= delay < base * (2^attempt + 1)
        for attempt in 0..3u32 {
            let d = dir.backoff_delay("k", attempt);
            let floor = base * (1 << attempt);
            assert!(d >= floor && d < floor + base, "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn keys_are_sanitized_to_portable_file_names() {
        let dir = CheckpointDir::new(scratch("sanitize")).unwrap();
        dir.save("cell-BT-IO full/16p::RAID 5", "v");
        assert_eq!(
            dir.load("cell-BT-IO full/16p::RAID 5").as_deref(),
            Some("v")
        );
        for entry in fs::read_dir(dir.root()).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
                "unportable file name {name}"
            );
        }
    }
}
