//! Kill-and-resume correctness for supervised campaigns.
//!
//! A campaign checkpointed to disk, interrupted at any point (simulated by
//! deleting a suffix of its checkpoint files), then resumed, must render
//! byte-identically to an uninterrupted same-seed run. A checkpoint that
//! was torn mid-write (truncated) or corrupted on disk (bit flip) must be
//! detected by its digest and recomputed, not trusted.

use bench::checkpoint::CampaignStore;
use cluster::{config as ioconfig, presets};
use ioeval_core::campaign::Campaign;
use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore, SuperviseOptions};
use ioeval_core::charact::CharacterizeOptions;
use simcore::{KIB, MIB};
use std::fs;
use std::path::PathBuf;
use workloads::{BtClass, BtIo, BtSubtype};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ioeval-resume-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn charact_opts() -> CharacterizeOptions {
    let mut o = CharacterizeOptions::quick();
    o.records = vec![64 * KIB, MIB];
    o.iozone_file_size = Some(64 * MIB);
    o.ior_blocks = vec![MIB];
    o.ior_ranks = 2;
    o
}

fn run_campaign_jobs(
    store: &mut (dyn ioeval_core::campaign::CellStore + Send),
    jobs: usize,
) -> Campaign {
    let spec = presets::aohyper();
    let configs = ioconfig::aohyper_configs();
    let bt = || {
        BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(3)
            .gflops(20.0)
            .scenario()
    };
    let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
    run_campaign_supervised(
        &spec,
        &configs,
        &apps,
        &charact_opts(),
        &SuperviseOptions::default().with_jobs(jobs),
        store,
    )
}

fn run_campaign_with(store: &mut (dyn ioeval_core::campaign::CellStore + Send)) -> Campaign {
    run_campaign_jobs(store, 1)
}

/// A stable digest of a checkpoint directory: file names and contents.
fn dir_digest(dir: &PathBuf) -> Vec<(String, u64)> {
    let mut entries: Vec<(String, u64)> = fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            let name = e.file_name().to_string_lossy().into_owned();
            let digest = bench::checkpoint::fnv1a64(&fs::read(e.path()).unwrap());
            (name, digest)
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn interrupted_campaign_resumes_byte_identically() {
    let dir = scratch("kill");

    // The reference: one uninterrupted, storeless run.
    let reference = run_campaign_with(&mut NoStore).render();

    // A checkpointed run; every characterization and cell lands on disk.
    let mut store = CampaignStore::open(&dir).unwrap();
    let first = run_campaign_with(&mut store).render();
    assert_eq!(first, reference, "checkpointing must not change results");
    let files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(
        files.len() >= 6,
        "3 characterizations + 3 cells expected, got {}",
        files.len()
    );

    // "Kill" the campaign mid-stream: erase a suffix of its progress (one
    // characterization and one cell), as if the process died before
    // writing them.
    let mut sorted = files.clone();
    sorted.sort();
    fs::remove_file(&sorted[0]).unwrap();
    fs::remove_file(sorted.last().unwrap()).unwrap();

    // Resume: missing artifacts recompute, present ones replay.
    let mut store = CampaignStore::open(&dir).unwrap();
    let resumed = run_campaign_with(&mut store).render();
    assert_eq!(resumed, reference, "resume must be byte-identical");
}

#[test]
fn corrupt_checkpoints_are_detected_and_recomputed() {
    let dir = scratch("corrupt");
    let mut store = CampaignStore::open(&dir).unwrap();
    let reference = run_campaign_with(&mut store).render();

    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();

    // Truncate one checkpoint (torn write) and flip a byte in another
    // (silent corruption).
    let torn = &files[0];
    let full = fs::read(torn).unwrap();
    fs::write(torn, &full[..full.len() / 3]).unwrap();

    let flipped = files.last().unwrap();
    let mut bytes = fs::read(flipped).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(flipped, &bytes).unwrap();

    // The resumed campaign must notice both (digest/parse mismatch),
    // recompute them, and still render byte-identically.
    let mut store = CampaignStore::open(&dir).unwrap();
    let resumed = run_campaign_with(&mut store).render();
    assert_eq!(
        resumed, reference,
        "corrupt checkpoints must be recomputed, not trusted"
    );

    // And the recomputed artifacts must have been re-persisted intact.
    let reloaded = fs::read(torn).unwrap();
    assert!(
        reloaded.len() > full.len() / 3,
        "torn checkpoint must be rewritten"
    );
}

#[test]
fn quarantine_state_survives_checkpoint_and_resume() {
    let dir = scratch("quarantine");
    let mut store = CampaignStore::open(&dir).unwrap();
    let reference = run_campaign_with(&mut store).render();

    // Tear one checkpoint mid-write.
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    let torn = &files[0];
    let full = fs::read(torn).unwrap();
    fs::write(torn, &full[..full.len() / 2]).unwrap();

    // The resume quarantines the torn file (kept aside for forensics),
    // recomputes the artifact, and renders byte-identically — quarantines
    // are successful healing, so they must never leak into the rendering.
    let mut store = CampaignStore::open(&dir).unwrap();
    let resumed = run_campaign_with(&mut store).render();
    assert_eq!(resumed, reference, "healing must be invisible in results");
    assert_eq!(store.dir().health().quarantined, 1);
    let quarantined: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".json.quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "torn file kept aside");

    // The quarantine survives a further checkpoint/resume cycle: the next
    // resume replays every (recomputed) checkpoint, quarantines nothing
    // new, and leaves the forensic copy untouched.
    let aside_bytes = fs::read(&quarantined[0]).unwrap();
    let mut store = CampaignStore::open(&dir).unwrap();
    let again = run_campaign_with(&mut store).render();
    assert_eq!(again, reference);
    assert_eq!(store.dir().health().quarantined, 0, "nothing left to heal");
    assert_eq!(
        fs::read(&quarantined[0]).unwrap(),
        aside_bytes,
        "the quarantined file must survive resume untouched"
    );
}

#[test]
fn parallel_checkpoints_are_digest_identical_to_sequential() {
    // A --jobs 4 campaign must leave *exactly* the same checkpoint
    // directory behind as a --jobs 1 campaign: same file names, same
    // bytes. Store writes are serialized through the input-ordered
    // merger, so worker scheduling cannot leak into what is persisted.
    let seq_dir = scratch("digest-seq");
    let mut seq_store = CampaignStore::open(&seq_dir).unwrap();
    let seq_render = run_campaign_jobs(&mut seq_store, 1).render();

    let par_dir = scratch("digest-par");
    let mut par_store = CampaignStore::open(&par_dir).unwrap();
    let par_render = run_campaign_jobs(&mut par_store, 4).render();

    assert_eq!(seq_render, par_render, "rendered campaigns must match");
    assert_eq!(
        dir_digest(&seq_dir),
        dir_digest(&par_dir),
        "checkpoint directories must be digest-identical"
    );
}

#[test]
fn interrupted_parallel_campaign_resumes_byte_identically() {
    // Kill-and-resume across modes: a parallel campaign is interrupted
    // (a suffix of its checkpoints erased), then resumed *sequentially*,
    // and still converges to the reference — the store replays cells
    // written by workers and recomputes the erased ones.
    let dir = scratch("kill-par");
    let reference = run_campaign_with(&mut NoStore).render();

    let mut store = CampaignStore::open(&dir).unwrap();
    let first = run_campaign_jobs(&mut store, 4).render();
    assert_eq!(first, reference, "parallel run must match the reference");

    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert!(files.len() >= 6, "expected >= 6 checkpoints");
    fs::remove_file(&files[1]).unwrap();
    fs::remove_file(files.last().unwrap()).unwrap();

    let mut store = CampaignStore::open(&dir).unwrap();
    let resumed_seq = run_campaign_with(&mut store).render();
    assert_eq!(resumed_seq, reference, "sequential resume of parallel run");

    // And the other direction: interrupt again, resume in parallel.
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    fs::remove_file(&files[0]).unwrap();
    let mut store = CampaignStore::open(&dir).unwrap();
    let resumed_par = run_campaign_jobs(&mut store, 4).render();
    assert_eq!(resumed_par, reference, "parallel resume of interrupted run");
}
