//! Kill-and-resume correctness for supervised campaigns.
//!
//! A campaign checkpointed to disk, interrupted at any point (simulated by
//! deleting a suffix of its checkpoint files), then resumed, must render
//! byte-identically to an uninterrupted same-seed run. A checkpoint that
//! was torn mid-write (truncated) or corrupted on disk (bit flip) must be
//! detected by its digest and recomputed, not trusted.

use bench::checkpoint::CampaignStore;
use cluster::{config as ioconfig, presets};
use ioeval_core::campaign::Campaign;
use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore, SuperviseOptions};
use ioeval_core::charact::CharacterizeOptions;
use simcore::{KIB, MIB};
use std::fs;
use std::path::PathBuf;
use workloads::{BtClass, BtIo, BtSubtype};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ioeval-resume-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn charact_opts() -> CharacterizeOptions {
    let mut o = CharacterizeOptions::quick();
    o.records = vec![64 * KIB, MIB];
    o.iozone_file_size = Some(64 * MIB);
    o.ior_blocks = vec![MIB];
    o.ior_ranks = 2;
    o
}

fn run_campaign_with(store: &mut dyn ioeval_core::campaign::CellStore) -> Campaign {
    let spec = presets::aohyper();
    let configs = ioconfig::aohyper_configs();
    let bt = || {
        BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(3)
            .gflops(20.0)
            .scenario()
    };
    let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
    run_campaign_supervised(
        &spec,
        &configs,
        &apps,
        &charact_opts(),
        &SuperviseOptions::default(),
        store,
    )
}

#[test]
fn interrupted_campaign_resumes_byte_identically() {
    let dir = scratch("kill");

    // The reference: one uninterrupted, storeless run.
    let reference = run_campaign_with(&mut NoStore).render();

    // A checkpointed run; every characterization and cell lands on disk.
    let mut store = CampaignStore::open(&dir).unwrap();
    let first = run_campaign_with(&mut store).render();
    assert_eq!(first, reference, "checkpointing must not change results");
    let files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(
        files.len() >= 6,
        "3 characterizations + 3 cells expected, got {}",
        files.len()
    );

    // "Kill" the campaign mid-stream: erase a suffix of its progress (one
    // characterization and one cell), as if the process died before
    // writing them.
    let mut sorted = files.clone();
    sorted.sort();
    fs::remove_file(&sorted[0]).unwrap();
    fs::remove_file(sorted.last().unwrap()).unwrap();

    // Resume: missing artifacts recompute, present ones replay.
    let mut store = CampaignStore::open(&dir).unwrap();
    let resumed = run_campaign_with(&mut store).render();
    assert_eq!(resumed, reference, "resume must be byte-identical");
}

#[test]
fn corrupt_checkpoints_are_detected_and_recomputed() {
    let dir = scratch("corrupt");
    let mut store = CampaignStore::open(&dir).unwrap();
    let reference = run_campaign_with(&mut store).render();

    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();

    // Truncate one checkpoint (torn write) and flip a byte in another
    // (silent corruption).
    let torn = &files[0];
    let full = fs::read(torn).unwrap();
    fs::write(torn, &full[..full.len() / 3]).unwrap();

    let flipped = files.last().unwrap();
    let mut bytes = fs::read(flipped).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(flipped, &bytes).unwrap();

    // The resumed campaign must notice both (digest/parse mismatch),
    // recompute them, and still render byte-identically.
    let mut store = CampaignStore::open(&dir).unwrap();
    let resumed = run_campaign_with(&mut store).render();
    assert_eq!(
        resumed, reference,
        "corrupt checkpoints must be recomputed, not trusted"
    );

    // And the recomputed artifacts must have been re-persisted intact.
    let reloaded = fs::read(torn).unwrap();
    assert!(
        reloaded.len() > full.len() / 3,
        "torn checkpoint must be rewritten"
    );
}
