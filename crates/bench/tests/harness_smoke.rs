//! Smoke test: every registered experiment runs at quick scale and
//! produces non-trivial output.
//!
//! Ignored by default because it executes the full harness (about a minute
//! in release mode; considerably longer in debug). Run it with:
//!
//! ```text
//! cargo test -p bench --release --test harness_smoke -- --ignored
//! ```

use bench::experiments::registry;
use bench::{Repro, Scale};

#[test]
#[ignore = "runs the whole quick-scale harness (~1 min in release)"]
fn every_experiment_runs_at_quick_scale() {
    let mut repro = Repro::new(Scale::Quick);
    for (id, _desc, f) in registry() {
        let out = f(&mut repro);
        assert!(
            out.len() > 100,
            "experiment {id} produced suspiciously little output:\n{out}"
        );
        assert!(
            !out.contains("NaN") && !out.contains("inf"),
            "experiment {id} produced non-finite numbers"
        );
    }
}

#[test]
fn single_cheap_experiment_runs_in_debug() {
    // fig4 needs no simulation — safe for the default test pass.
    let mut repro = Repro::new(Scale::Quick);
    let out = bench::experiments::fig4(&mut repro);
    assert!(out.contains("JBOD") && out.contains("RAID 5"));
}
