//! Resilience campaign: the same IOR-style read stream on a RAID 5
//! server while the array is healthy, one-disk degraded, and rebuilding.
//!
//! Degraded cold reads must pay the reconstruction penalty (strictly
//! below the healthy rate), the rebuild must complete in finite simulated
//! time, and two same-seed campaigns must render byte-identical reports.
//!
//! A second campaign runs an IOR write stream on a replicated PVFS
//! deployment while one I/O server is down (writes fail over to the
//! surviving replica holders) and while the server recovers mid-run (the
//! resync replays the writes it missed) — no workload byte may be lost
//! either way.

use cluster::{presets, DeviceLayout, IoConfigBuilder, Mount};
use ioeval_core::eval::{evaluate, EvalOptions, EvalReport, FaultScenario};
use ioeval_core::perf_table::PerfTableSet;
use ioeval_core::report::render_resilience_table;
use simcore::{Time, MIB};
use workloads::{Ior, IorOp};

fn run(faults: FaultScenario) -> EvalReport {
    let spec = presets::test_cluster();
    let config = IoConfigBuilder::new(DeviceLayout::raid5_paper()).build();
    let ior = Ior::new(4, fs::FileId(7), 32 * MIB, IorOp::Read);
    // Usage tables are irrelevant to the resilience comparison.
    let tables = PerfTableSet::new("test", "RAID 5");
    let opts = EvalOptions {
        faults,
        ..EvalOptions::default()
    };
    evaluate(&spec, &config, ior.scenario(), &tables, &opts).expect("evaluation")
}

fn campaign() -> Vec<EvalReport> {
    vec![
        run(FaultScenario::Healthy),
        run(FaultScenario::Degraded {
            disk: 1,
            at: Time::ZERO,
        }),
        run(FaultScenario::Rebuilding {
            disk: 1,
            fail_at: Time::from_millis(1),
            replace_at: Time::from_millis(500),
        }),
    ]
}

#[test]
fn degraded_reads_trail_healthy_and_rebuild_is_finite() {
    let reports = campaign();
    let (healthy, degraded, rebuilding) = (&reports[0], &reports[1], &reports[2]);

    assert!(
        degraded.read_rate.bytes_per_sec() < healthy.read_rate.bytes_per_sec(),
        "degraded {} must be strictly below healthy {}",
        degraded.read_rate,
        healthy.read_rate
    );
    assert!(degraded.exec_time > healthy.exec_time);
    assert!(healthy.rebuild.is_none());

    let rebuild = rebuilding
        .rebuild
        .expect("replacement must start a rebuild");
    assert!(rebuild.finished.is_some(), "rebuild must finish");
    assert_eq!(rebuild.bytes_done, rebuild.bytes_total);
    assert!(rebuild.bytes_total > 0);
    assert!(rebuild.duration(rebuilding.exec_time) > Time::ZERO);
    assert!(rebuild.duration(rebuilding.exec_time) < Time::from_secs(3600));

    let refs: Vec<&EvalReport> = reports.iter().collect();
    let table = render_resilience_table(&refs);
    for needle in ["healthy", "degraded", "rebuilding", "w_retained", "rebuild"] {
        assert!(table.contains(needle), "missing {needle} in:\n{table}");
    }
}

fn pfs_run(faults: FaultScenario) -> EvalReport {
    let spec = presets::test_cluster();
    let config = IoConfigBuilder::new(DeviceLayout::raid5_paper())
        .pfs(2)
        .pfs_replicas(2)
        .build();
    let ior = Ior::new(4, fs::FileId(8), 32 * MIB, IorOp::Write).on(Mount::Pfs);
    let tables = PerfTableSet::new("test", "PVFS x2");
    let opts = EvalOptions {
        faults,
        ..EvalOptions::default()
    };
    evaluate(&spec, &config, ior.scenario(), &tables, &opts).expect("evaluation")
}

fn pfs_campaign() -> Vec<EvalReport> {
    vec![
        pfs_run(FaultScenario::Healthy),
        pfs_run(FaultScenario::PfsDegraded {
            server: 1,
            at: Time::from_millis(1),
        }),
        pfs_run(FaultScenario::PfsRecovered {
            server: 1,
            fail_at: Time::from_millis(1),
            recover_at: Time::from_millis(500),
        }),
    ]
}

#[test]
fn pfs_failover_campaign_loses_no_bytes() {
    let reports = pfs_campaign();
    let (healthy, degraded, recovered) = (&reports[0], &reports[1], &reports[2]);

    assert_eq!(healthy.io_errors, 0);
    assert_eq!(healthy.client_retries, 0, "fault-free runs never retry");
    assert_eq!(healthy.pfs_failovers, 0);

    for r in [degraded, recovered] {
        assert_eq!(
            r.profile.bytes_written, healthy.profile.bytes_written,
            "{}: every workload byte must land despite the dead server",
            r.scenario
        );
        assert_eq!(r.io_errors, 0, "{}: replicas absorb the outage", r.scenario);
        assert!(r.client_retries > 0, "{}: detection retries", r.scenario);
        assert!(r.pfs_failovers > 0, "{}: writes fail over", r.scenario);
    }
    assert_eq!(degraded.pfs_resync_bytes, 0, "no recovery, no resync");
    assert!(
        recovered.pfs_resync_bytes > 0,
        "the recovered server must replay missed writes"
    );

    let refs: Vec<&EvalReport> = reports.iter().collect();
    let table = render_resilience_table(&refs);
    for needle in ["pfs-degraded", "pfs-recovered", "failovers", "resync"] {
        assert!(table.contains(needle), "missing {needle} in:\n{table}");
    }
}

#[test]
fn same_seed_pfs_campaigns_render_identically() {
    let a = pfs_campaign();
    let b = pfs_campaign();
    let render = |reports: &[EvalReport]| {
        let refs: Vec<&EvalReport> = reports.iter().collect();
        render_resilience_table(&refs)
    };
    assert_eq!(
        render(&a),
        render(&b),
        "PFS failover campaigns must be deterministic"
    );
}

#[test]
fn same_seed_campaigns_render_identically() {
    let a = campaign();
    let b = campaign();
    let render = |reports: &[EvalReport]| {
        let refs: Vec<&EvalReport> = reports.iter().collect();
        render_resilience_table(&refs)
    };
    assert_eq!(
        render(&a),
        render(&b),
        "fault-injected campaigns must be deterministic"
    );
}

#[test]
#[ignore = "characterizes Aohyper at quick scale (slow in debug)"]
fn resilience_experiment_renders_the_full_table() {
    let mut repro = bench::Repro::new(bench::Scale::Quick);
    let out = bench::experiments::resilience(&mut repro);
    for needle in [
        "Resilience",
        "healthy",
        "degraded",
        "rebuilding",
        "PFS resilience",
        "pfs-degraded",
        "pfs-recovered",
    ] {
        assert!(out.contains(needle), "missing {needle} in:\n{out}");
    }
    assert!(!out.contains("NaN") && !out.contains("inf"));
}

#[test]
#[ignore = "characterizes Aohyper at quick scale (slow in debug)"]
fn resilience_experiment_is_byte_identical_across_jobs() {
    let run = |jobs: usize| {
        let mut repro = bench::Repro::new(bench::Scale::Quick).with_jobs(jobs);
        bench::experiments::resilience(&mut repro)
    };
    assert_eq!(
        run(1),
        run(4),
        "the PFS failover campaign must render identically under --jobs 1 and --jobs 4"
    );
}
