//! Resilience campaign: the same IOR-style read stream on a RAID 5
//! server while the array is healthy, one-disk degraded, and rebuilding.
//!
//! Degraded cold reads must pay the reconstruction penalty (strictly
//! below the healthy rate), the rebuild must complete in finite simulated
//! time, and two same-seed campaigns must render byte-identical reports.

use cluster::{presets, DeviceLayout, IoConfigBuilder};
use ioeval_core::eval::{evaluate, EvalOptions, EvalReport, FaultScenario};
use ioeval_core::perf_table::PerfTableSet;
use ioeval_core::report::render_resilience_table;
use simcore::{Time, MIB};
use workloads::{Ior, IorOp};

fn run(faults: FaultScenario) -> EvalReport {
    let spec = presets::test_cluster();
    let config = IoConfigBuilder::new(DeviceLayout::raid5_paper()).build();
    let ior = Ior::new(4, fs::FileId(7), 32 * MIB, IorOp::Read);
    // Usage tables are irrelevant to the resilience comparison.
    let tables = PerfTableSet::new("test", "RAID 5");
    let opts = EvalOptions {
        faults,
        ..EvalOptions::default()
    };
    evaluate(&spec, &config, ior.scenario(), &tables, &opts).expect("evaluation")
}

fn campaign() -> Vec<EvalReport> {
    vec![
        run(FaultScenario::Healthy),
        run(FaultScenario::Degraded {
            disk: 1,
            at: Time::ZERO,
        }),
        run(FaultScenario::Rebuilding {
            disk: 1,
            fail_at: Time::from_millis(1),
            replace_at: Time::from_millis(500),
        }),
    ]
}

#[test]
fn degraded_reads_trail_healthy_and_rebuild_is_finite() {
    let reports = campaign();
    let (healthy, degraded, rebuilding) = (&reports[0], &reports[1], &reports[2]);

    assert!(
        degraded.read_rate.bytes_per_sec() < healthy.read_rate.bytes_per_sec(),
        "degraded {} must be strictly below healthy {}",
        degraded.read_rate,
        healthy.read_rate
    );
    assert!(degraded.exec_time > healthy.exec_time);
    assert!(healthy.rebuild.is_none());

    let rebuild = rebuilding
        .rebuild
        .expect("replacement must start a rebuild");
    assert!(rebuild.finished.is_some(), "rebuild must finish");
    assert_eq!(rebuild.bytes_done, rebuild.bytes_total);
    assert!(rebuild.bytes_total > 0);
    assert!(rebuild.duration(rebuilding.exec_time) > Time::ZERO);
    assert!(rebuild.duration(rebuilding.exec_time) < Time::from_secs(3600));

    let refs: Vec<&EvalReport> = reports.iter().collect();
    let table = render_resilience_table(&refs);
    for needle in ["healthy", "degraded", "rebuilding", "w_retained", "rebuild"] {
        assert!(table.contains(needle), "missing {needle} in:\n{table}");
    }
}

#[test]
fn same_seed_campaigns_render_identically() {
    let a = campaign();
    let b = campaign();
    let render = |reports: &[EvalReport]| {
        let refs: Vec<&EvalReport> = reports.iter().collect();
        render_resilience_table(&refs)
    };
    assert_eq!(
        render(&a),
        render(&b),
        "fault-injected campaigns must be deterministic"
    );
}

#[test]
#[ignore = "characterizes Aohyper at quick scale (slow in debug)"]
fn resilience_experiment_renders_the_full_table() {
    let mut repro = bench::Repro::new(bench::Scale::Quick);
    let out = bench::experiments::resilience(&mut repro);
    for needle in ["Resilience", "healthy", "degraded", "rebuilding"] {
        assert!(out.contains(needle), "missing {needle} in:\n{out}");
    }
    assert!(!out.contains("NaN") && !out.contains("inf"));
}
