//! Wall-clock speedup of the parallel campaign scheduler.
//!
//! Ignored by default (it is a timing measurement, not a correctness
//! gate); run explicitly in release mode:
//!
//! ```text
//! cargo test --release -p bench --test parallel_speedup -- --ignored --nocapture
//! ```
//!
//! Measured figures are recorded in `EXPERIMENTS.md`.

use cluster::{config as ioconfig, presets};
use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore, SuperviseOptions};
use ioeval_core::charact::CharacterizeOptions;
use simcore::{KIB, MIB};
use std::time::Instant;
use workloads::{BtClass, BtIo, BtSubtype, FileType, MadBench};

fn charact_opts() -> CharacterizeOptions {
    let mut o = CharacterizeOptions::quick();
    o.records = vec![64 * KIB, MIB];
    o.iozone_file_size = Some(128 * MIB);
    o.ior_blocks = vec![MIB];
    o.ior_ranks = 2;
    o
}

/// A 12-cell campaign (4 applications × aohyper's 3 configurations) at a
/// given worker count; returns (render, wall-clock seconds).
fn timed_campaign(jobs: usize) -> (String, f64) {
    let spec = presets::aohyper();
    let configs = ioconfig::aohyper_configs();
    let bt_full = || {
        BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(6)
            .gflops(20.0)
            .scenario()
    };
    let bt_simple = || {
        BtIo::new(BtClass::S, 4, BtSubtype::Simple)
            .with_dumps(3)
            .gflops(20.0)
            .scenario()
    };
    let mb_unique = || MadBench::new(4, FileType::Unique).with_kpix(2).scenario();
    let mb_shared = || MadBench::new(4, FileType::Shared).with_kpix(2).scenario();
    let apps: Vec<AppFactory> = vec![
        ("btio-full", &bt_full),
        ("btio-simple", &bt_simple),
        ("madbench-unique", &mb_unique),
        ("madbench-shared", &mb_shared),
    ];
    let sup = SuperviseOptions::default().with_jobs(jobs);
    let t0 = Instant::now();
    let campaign =
        run_campaign_supervised(&spec, &configs, &apps, &charact_opts(), &sup, &mut NoStore);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(campaign.outcomes.len(), 12, "4 apps x 3 configs");
    assert!(!campaign.is_degraded());
    (campaign.render(), elapsed)
}

#[test]
#[ignore = "timing measurement; run in release mode with --ignored"]
fn four_workers_beat_one_on_a_twelve_cell_campaign() {
    // Warm-up run so page cache / lazy init don't skew the sequential leg.
    let _ = timed_campaign(1);
    let (seq_render, seq_secs) = timed_campaign(1);
    let (par_render, par_secs) = timed_campaign(4);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "cores={cores}  jobs=1: {seq_secs:.2}s  jobs=4: {par_secs:.2}s  speedup: {:.2}x",
        seq_secs / par_secs
    );
    assert_eq!(seq_render, par_render, "speedup must not change results");
    if cores >= 2 {
        // A conservative gate: on a multi-core host four workers must beat
        // one by a measurable margin.
        assert!(
            par_secs < seq_secs * 0.9,
            "jobs=4 ({par_secs:.2}s) not measurably faster than jobs=1 ({seq_secs:.2}s)"
        );
    } else {
        // A single core cannot speed up, but the worker pool must not
        // slow the campaign down much either (lock + thread overhead).
        assert!(
            par_secs < seq_secs * 1.5,
            "jobs=4 ({par_secs:.2}s) overhead too high vs jobs=1 ({seq_secs:.2}s) on one core"
        );
    }
}
