//! Smoke tests for the hot-path microbenchmark harness.
//!
//! The real harness is the `hotpath` binary:
//!
//! ```text
//! cargo run --release -p bench --bin hotpath
//! ```
//!
//! which writes `BENCH_hotpath.json` (see README.md §"Hot-path
//! benchmarks"). These tests run the same code at smoke sizes so the
//! report schema — which the CI bench job and the committed baseline
//! depend on — stays pinned by a fast, always-on test.

use bench::hotpath::{run, HotpathConfig, HotpathReport};

#[test]
fn report_schema_is_stable() {
    let report = run(&HotpathConfig::smoke());
    assert_eq!(report.schema, 1);
    assert!(report.event_queue_mops > 0.0);
    assert!(report.striping_ns_per_op > 0.0);
    assert_eq!(report.cells.len(), 3, "three Aohyper configurations");
    assert!(report.cells.iter().all(|c| c.ms > 0.0));
    let sum: f64 = report.cells.iter().map(|c| c.ms).sum();
    assert!((report.pinned_cell_ms - sum).abs() < 1e-9);
    assert!(report.memo_cold_ms > 0.0 && report.memo_warm_ms > 0.0);
    assert!(report.scale_full_ms > 0.0 && report.scale_collapsed_ms > 0.0);
    assert!(report.scale_speedup > 0.0);

    // The JSON round-trips, and the fields the CI smoke job parses are
    // present under their exact names.
    let json = report.to_json();
    let back: HotpathReport = serde_json::from_str(&json).expect("round-trip");
    assert_eq!(back.schema, 1);
    let value: serde_json::Value = serde_json::from_str(&json).expect("parse");
    for field in [
        "schema",
        "pinned_cell_ms",
        "event_queue_mops",
        "memo_speedup",
        "scale_full_ms",
        "scale_collapsed_ms",
        "scale_speedup",
    ] {
        assert!(value.get(field).is_some(), "missing field {field}");
    }
}

#[test]
fn hotpath_gate_runs_with_observability_disabled() {
    // The CI bench gate times the pinned sweep with no sink installed:
    // the observability layer must stay on its zero-cost NoSink path for
    // the committed baseline (and its 25% tolerance) to stay meaningful.
    assert!(
        !simcore::obs::enabled(),
        "no sink must be installed when the gate starts"
    );
    let cells = bench::hotpath::pinned_cell_times(1);
    assert_eq!(cells.len(), 3);
    assert!(
        !simcore::obs::enabled(),
        "the pinned sweep must not leave a sink installed"
    );
}

#[test]
fn characterization_is_identical_with_and_without_collector() {
    // Observation is pure: a characterization run under a collector
    // produces byte-identical tables to an unobserved run, and the
    // collector actually saw the sweep's events.
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use ioeval_core::charact::{characterize_system, CharacterizeOptions};
    use ioeval_core::obs::Collector;

    let spec = presets::test_cluster();
    let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
    let opts = CharacterizeOptions::quick();

    let plain = characterize_system(&spec, &config, &opts).expect("characterize");
    let collector = Collector::new();
    let observed = {
        let _guard = collector.install();
        characterize_system(&spec, &config, &opts).expect("characterize observed")
    };
    assert_eq!(
        plain.to_json(),
        observed.to_json(),
        "a collector must not perturb characterization"
    );
    assert!(
        collector.metrics().total_ops() > 0,
        "the collector should have observed the sweep"
    );
}

#[test]
fn memo_warm_replay_beats_cold_compute() {
    // Even at smoke sizes the warm campaign only clones tables out of the
    // memo, so it must not be slower than the cold one by more than noise.
    let (cold, warm) = bench::hotpath::memo_campaign_ms();
    assert!(cold > 0.0 && warm > 0.0);
    assert!(
        warm <= cold * 1.5,
        "warm replay ({warm:.2} ms) slower than cold compute ({cold:.2} ms)"
    );
}
