//! Smoke tests for the hot-path microbenchmark harness.
//!
//! The real harness is the `hotpath` binary:
//!
//! ```text
//! cargo run --release -p bench --bin hotpath
//! ```
//!
//! which writes `BENCH_hotpath.json` (see README.md §"Hot-path
//! benchmarks"). These tests run the same code at smoke sizes so the
//! report schema — which the CI bench job and the committed baseline
//! depend on — stays pinned by a fast, always-on test.

use bench::hotpath::{run, HotpathConfig, HotpathReport};

#[test]
fn report_schema_is_stable() {
    let report = run(&HotpathConfig::smoke());
    assert_eq!(report.schema, 1);
    assert!(report.event_queue_mops > 0.0);
    assert!(report.striping_ns_per_op > 0.0);
    assert_eq!(report.cells.len(), 3, "three Aohyper configurations");
    assert!(report.cells.iter().all(|c| c.ms > 0.0));
    let sum: f64 = report.cells.iter().map(|c| c.ms).sum();
    assert!((report.pinned_cell_ms - sum).abs() < 1e-9);
    assert!(report.memo_cold_ms > 0.0 && report.memo_warm_ms > 0.0);

    // The JSON round-trips, and the fields the CI smoke job parses are
    // present under their exact names.
    let json = report.to_json();
    let back: HotpathReport = serde_json::from_str(&json).expect("round-trip");
    assert_eq!(back.schema, 1);
    let value: serde_json::Value = serde_json::from_str(&json).expect("parse");
    for field in [
        "schema",
        "pinned_cell_ms",
        "event_queue_mops",
        "memo_speedup",
    ] {
        assert!(value.get(field).is_some(), "missing field {field}");
    }
}

#[test]
fn memo_warm_replay_beats_cold_compute() {
    // Even at smoke sizes the warm campaign only clones tables out of the
    // memo, so it must not be slower than the cold one by more than noise.
    let (cold, warm) = bench::hotpath::memo_campaign_ms();
    assert!(cold > 0.0 && warm > 0.0);
    assert!(
        warm <= cold * 1.5,
        "warm replay ({warm:.2} ms) slower than cold compute ({cold:.2} ms)"
    );
}
