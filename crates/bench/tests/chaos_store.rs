//! Fault-by-fault recovery behavior of the self-healing checkpoint store
//! and the tolerant artifact writer, driven by `simcore::chaos` injection.
//!
//! Chaos plans are process-global; every test here serializes on
//! [`CHAOS_LOCK`].

use bench::checkpoint::{CheckpointDir, WriteRetry};
use bench::write_artifact;
use simcore::chaos::{self, ChaosAction, ChaosSite, HostFaultPlan, Injection};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ioeval-chaos-store-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Retries with no real sleeping, so exhausting them stays instant.
fn fast_retry() -> WriteRetry {
    WriteRetry {
        attempts: 3,
        backoff: Duration::from_nanos(1),
        ..WriteRetry::default()
    }
}

/// A plan failing every write attempt of the first save (three attempts).
fn kill_first_save(action: ChaosAction) -> HostFaultPlan {
    HostFaultPlan::from_injections(
        (0..3)
            .map(|nth| Injection {
                site: ChaosSite::CheckpointWrite,
                nth,
                action,
            })
            .collect(),
    )
}

#[test]
fn single_write_failure_heals_by_retrying() {
    let _l = chaos_lock();
    let dir = CheckpointDir::new(scratch("retry"))
        .unwrap()
        .with_retry(fast_retry());
    let guard = chaos::install(HostFaultPlan::single(
        ChaosSite::CheckpointWrite,
        0,
        ChaosAction::Fail,
    ));
    dir.save("k", "payload");
    drop(guard);
    let health = dir.health();
    assert_eq!(health.write_retries, 1, "first attempt failed, second won");
    assert_eq!(health.write_failures, 0);
    assert!(!health.degraded);
    assert_eq!(dir.load("k").as_deref(), Some("payload"));
    assert_eq!(dir.len(), 1, "the durable file exists");
}

#[test]
fn exhausted_enospc_retries_degrade_to_memory_and_replay() {
    let _l = chaos_lock();
    let root = scratch("enospc");
    let dir = CheckpointDir::new(&root).unwrap().with_retry(fast_retry());
    let guard = chaos::install(kill_first_save(ChaosAction::Enospc));
    dir.save("k", "precious");
    drop(guard);
    let health = dir.health();
    assert_eq!(health.write_retries, 2);
    assert_eq!(health.write_failures, 1);
    assert!(health.degraded, "store degraded to in-memory");
    // The artifact still replays in-process from the overlay...
    assert_eq!(dir.load("k").as_deref(), Some("precious"));
    // ...but is not durable: a fresh store over the same root misses.
    assert_eq!(dir.len(), 0);
    let fresh = CheckpointDir::new(&root).unwrap();
    assert_eq!(fresh.load("k"), None);
    // A later successful save drops the degraded copy and heals the key.
    dir.save("k", "precious");
    assert_eq!(dir.len(), 1);
    assert_eq!(
        CheckpointDir::new(&root).unwrap().load("k").as_deref(),
        Some("precious")
    );
}

#[test]
fn torn_write_leaves_damage_a_fresh_store_quarantines() {
    let _l = chaos_lock();
    let root = scratch("torn");
    let dir = CheckpointDir::new(&root).unwrap().with_retry(fast_retry());
    // Every attempt tears mid-write: damage lands *in place* on the target
    // file (a torn write bypasses temp+rename by design).
    let guard = chaos::install(kill_first_save(ChaosAction::Torn { sixteenths: 8 }));
    dir.save("k", "half of me will be missing");
    drop(guard);
    assert!(dir.health().degraded);
    // The wounded store itself replays from the overlay.
    assert_eq!(dir.load("k").as_deref(), Some("half of me will be missing"));
    // A fresh store (post-crash resume) finds the torn file, refuses to
    // trust it, quarantines it aside, and reports a miss.
    let fresh = CheckpointDir::new(&root).unwrap();
    assert_eq!(fresh.load("k"), None);
    assert_eq!(fresh.health().quarantined, 1);
    assert!(
        fs::read_dir(&root)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e
                .file_name()
                .to_string_lossy()
                .ends_with(".json.quarantined")),
        "torn file kept aside for forensics"
    );
    // Recomputing heals: the key saves and loads cleanly again.
    fresh.save("k", "recomputed");
    assert_eq!(fresh.load("k").as_deref(), Some("recomputed"));
}

#[test]
fn serialization_faults_are_counted_not_fatal() {
    let _l = chaos_lock();
    let dir = CheckpointDir::new(scratch("ser"))
        .unwrap()
        .with_retry(fast_retry());
    let guard = chaos::install(HostFaultPlan::single(
        ChaosSite::StoreSerialize,
        0,
        ChaosAction::Fail,
    ));
    dir.save("k", "never serialized");
    dir.save("k2", "fine");
    drop(guard);
    let health = dir.health();
    assert_eq!(health.serialize_errors, 1);
    assert_eq!(health.write_failures, 0, "the write layer never ran for k");
    assert_eq!(dir.load("k"), None, "k was skipped, not torn");
    assert_eq!(dir.load("k2").as_deref(), Some("fine"));
}

#[test]
fn artifact_write_faults_never_poison_the_caller() {
    let _l = chaos_lock();
    let root = scratch("artifact");
    fs::create_dir_all(&root).unwrap();
    let path = root.join("trace.json");
    let guard = chaos::install(HostFaultPlan::single(
        ChaosSite::TraceWrite,
        0,
        ChaosAction::Fail,
    ));
    assert!(
        !write_artifact("trace", &path, "{}"),
        "the injected failure is reported, not thrown"
    );
    assert!(!path.exists());
    // The next export (injection spent) succeeds.
    assert!(write_artifact("trace", &path, "{}"));
    drop(guard);
    assert_eq!(fs::read_to_string(&path).unwrap(), "{}");
}
