//! File identity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A file identifier, unique within one filesystem instance.
///
/// Path resolution lives in the layers above (the MPI-IO runtime maps file
/// names to ids); the filesystem models only need identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(FileId(3).to_string(), "file#3");
        assert!(FileId(1) < FileId(2));
    }
}
