//! A PVFS-like parallel filesystem.
//!
//! The paper's related work revolves around parallel filesystems (PVFS,
//! GPFS, Lustre) and its configuration analysis lists "number and placement
//! of I/O node" as a configurable factor its testbeds could not vary. This
//! model makes that factor real: files are striped round-robin across `N`
//! I/O servers (PVFS default stripe 64 KiB); clients talk to all servers in
//! parallel over the storage network.
//!
//! Faithful PVFS semantics, which are what make it interesting next to NFS:
//!
//! * **no client-side data caching** — every operation moves bytes;
//! * **no locking** — MPI-IO runs natively (non-overlapping writes are the
//!   application's contract), so there is no `lockd` serialization;
//! * metadata lives on server 0 (create/open/close are one RPC there,
//!   failing over to the next live server when server 0 is down).
//!
//! # Replication and failover
//!
//! With [`PfsParams::replicas`] `= R > 1` every stripe chunk is stored on
//! `R` servers in chained-declustered placement: replica rank `r` of chunk
//! `c` lives on server `(c % N + r) % N`, in a per-rank shadow file, at the
//! same server-local offset as the primary — so per-server spans stay
//! contiguous for every rank. Writes go to all live holders; reads are
//! served by the first live holder in rank order.
//!
//! Server faults are injected with [`PfsSystem::fail_server`] /
//! [`PfsSystem::recover_server`] / [`PfsSystem::set_server_slow`]. A client
//! RPC to a dead-but-undetected server burns the full
//! [`NfsRetryParams`]-style retransmission budget (request wire time per
//! attempt, exponential backoff, seeded jitter) before the client marks the
//! server down; marked servers are skipped instantly. When every holder of
//! a span is down the operation surfaces a typed [`PfsError::Unavailable`]
//! instead of panicking. Writes that miss a dead holder are recorded as
//! missed extents and replayed from a surviving replica when the server
//! recovers (background catch-up traffic on the storage class). The retry
//! machinery engages only for servers that are actually down, so
//! fault-free runs are byte-identical to the pre-replication model.

use crate::file::FileId;
use crate::local::{FsMeter, LocalFs};
use crate::meta::{MetaOps, MetaVerb};
use crate::nfs::NfsRetryParams;
use netsim::{Network, NodeId, TrafficClass};
use simcore::{FifoResource, MultiResource, SplitMix64, Time};
use std::fmt;

/// RPC framing overhead on the wire.
const RPC_HEADER: u64 = 120;
/// Data-less reply size.
const RPC_REPLY: u64 = 96;

/// Default base seed of the PFS client's retry-jitter stream (`b"PFSC"`
/// as a word). The stream is drawn from only when a retransmission
/// actually fires, so fault-free runs never consume it.
const DEFAULT_JITTER_SEED: u64 = 0x5046_5343;

/// A client-visible PFS failure: a span (or metadata object) whose every
/// replica holder is down. The degraded-mode contract is a typed error,
/// never a panic — the application layer decides whether to abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PfsError {
    /// All replica holders of the targeted data were unreachable.
    Unavailable {
        /// RPC procedure that gave up (`"WRITE"`, `"READ"`, `"META"`, ...).
        op: &'static str,
        /// File the operation targeted.
        file: FileId,
        /// Instant the client gave up (the last detection deadline).
        at: Time,
        /// Preferred (rank-0) server of the unreachable data.
        server: usize,
    },
}

impl PfsError {
    /// The simulated instant the error was observed by the caller; lets the
    /// application layer keep its clock moving past a failed operation.
    pub fn at(&self) -> Time {
        match *self {
            PfsError::Unavailable { at, .. } => at,
        }
    }
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::Unavailable {
                op,
                file,
                at,
                server,
            } => write!(
                f,
                "pfs: {op} on file {} unavailable at {:.3}s (server {server} and all replicas down)",
                file.0,
                at.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for PfsError {}

/// Parameters of a parallel filesystem deployment.
#[derive(Clone, Debug)]
pub struct PfsParams {
    /// Stripe unit (PVFS default: 64 KiB).
    pub stripe: u64,
    /// Per-server daemon concurrency.
    pub daemons: usize,
    /// Per-RPC server dispatch cost.
    pub rpc_overhead: Time,
    /// Largest single network transfer (larger spans are pipelined in
    /// messages of this size).
    pub max_msg: u64,
    /// Copies of every stripe chunk (1 = no replication). Replica rank `r`
    /// of a chunk lands on the server `r` places after its primary.
    pub replicas: usize,
    /// Timeout/retransmission discipline of client RPCs to unresponsive
    /// servers (same shape as an NFS mount's `timeo`/`retrans`). Healthy
    /// servers never engage it.
    pub retry: NfsRetryParams,
}

impl PfsParams {
    /// The default PFS retry discipline: an impatient 2 s initial timeout
    /// with two retransmissions — parallel-FS clients detect dead servers
    /// quickly so failover is cheap relative to NFS soft-mount budgets.
    pub fn default_retry() -> NfsRetryParams {
        NfsRetryParams {
            timeo: Time::from_secs(2),
            retrans: 2,
            max_timeo: Time::from_secs(60),
            jitter_frac: 0.1,
            backoff_mult: 2,
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }
}

impl Default for PfsParams {
    fn default() -> Self {
        PfsParams {
            stripe: 64 * 1024,
            daemons: 8,
            rpc_overhead: Time::from_micros(70),
            max_msg: 4 * 1024 * 1024,
            replicas: 1,
            retry: PfsParams::default_retry(),
        }
    }
}

/// The rank-`r` shadow file of `file`: rank 0 is the file itself (so an
/// unreplicated deployment touches exactly the legacy on-server objects),
/// higher ranks use a disjoint id namespace.
fn rfile(file: FileId, rank: usize) -> FileId {
    if rank == 0 {
        file
    } else {
        FileId(file.0.wrapping_add((rank as u64) << 48))
    }
}

/// Stretches a server-side service interval by the server's slowdown
/// factor. Exactly the identity at factor 1.0 (no float math), so healthy
/// timelines are bit-for-bit unchanged.
fn stretch(slow: f64, arrive: Time, done: Time) -> Time {
    if slow == 1.0 {
        done
    } else {
        arrive + Time::from_secs_f64((done - arrive).as_secs_f64() * slow)
    }
}

/// A write that could not reach a (dead) replica holder; replayed from a
/// surviving holder at recovery.
#[derive(Clone, Copy, Debug)]
struct Missed {
    file: FileId,
    /// Replica rank the dead server holds for this span.
    rank: usize,
    /// Server-local offset of the span (identical on every rank's holder).
    off: u64,
    len: u64,
    /// Rank-0 server of the span (source holders are `(s0 + r') % N`).
    s0: usize,
}

struct PfsServer {
    node: NodeId,
    pool: MultiResource,
    fs: LocalFs,
    /// Ground truth: the server process is running.
    up: bool,
    /// Client view: the retry budget against this server was exhausted and
    /// clients skip it without waiting. Implies `!up`; cleared on recovery.
    marked: bool,
    /// Service-time multiplier (1.0 = nominal).
    slow: f64,
    /// Writes this server missed while down, pending resync.
    missed: Vec<Missed>,
    /// Dir-entry lock of the namespace shard homed here: every mdtest-class
    /// metadata verb holds it for its service interval, so concurrent
    /// updates to directories of this shard serialize FIFO.
    dirlock: FifoResource,
}

/// Burns the full retransmission budget against a down server: every
/// attempt sends the request bytes onto the wire (the server never
/// replies), backing off with seeded jitter between attempts. Marks the
/// server down and returns the final deadline — the instant the client
/// gives up and fails over.
#[allow(clippy::too_many_arguments)]
fn detect_down(
    net: &mut Network,
    srv: &mut PfsServer,
    rng: &mut SplitMix64,
    retry: &NfsRetryParams,
    retries: &mut u64,
    op: &'static str,
    server: usize,
    client: NodeId,
    now: Time,
    req_bytes: u64,
) -> Time {
    let attempts = retry.retrans + 1;
    let mut timeout = retry.timeo;
    let mut issue = now;
    let mut deadline = now;
    for attempt in 1..=attempts {
        net.send(issue, client, srv.node, req_bytes, TrafficClass::Storage);
        deadline = issue + timeout;
        if attempt == attempts {
            break;
        }
        *retries += 1;
        simcore::obs::emit(|| simcore::obs::ObsEvent::PfsRetry {
            op,
            server,
            at: deadline,
            attempt,
        });
        let jitter = timeout.as_secs_f64() * retry.jitter_frac * rng.next_f64();
        issue = deadline + Time::from_secs_f64(jitter);
        timeout = Time::from_nanos(
            timeout
                .as_nanos()
                .saturating_mul(retry.backoff_mult.max(1) as u64),
        )
        .min(retry.max_timeo);
    }
    srv.marked = true;
    deadline
}

/// Two distinct mutable elements of a slice.
fn index_pair<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// A deployed parallel filesystem: `N` I/O servers, each with its own
/// backing [`LocalFs`] (dedicated data disks on the server nodes).
pub struct PfsSystem {
    params: PfsParams,
    servers: Vec<PfsServer>,
    meter: FsMeter,
    rng: SplitMix64,
    retries: u64,
    failovers: u64,
    resyncs: u64,
    resync_bytes: u64,
}

impl PfsSystem {
    /// Deploys servers on `server_nodes`, one backing filesystem each.
    ///
    /// Panic audit (campaign-worker reachability): the constructor asserts
    /// below restate what `IoConfig::validate` already rejects with typed
    /// `ConfigError`s (`TooManyPfsServers`, `TooManyPfsReplicas`) before
    /// any machine is built — `ClusterMachine::try_new` validates first —
    /// so no configuration a campaign cell can carry reaches them. They
    /// stay asserts to guard direct (test/embedding) construction.
    pub fn new(params: PfsParams, server_nodes: Vec<NodeId>, backends: Vec<LocalFs>) -> PfsSystem {
        assert!(!server_nodes.is_empty(), "a PFS needs at least one server");
        assert_eq!(server_nodes.len(), backends.len(), "one backend per server");
        assert!(params.replicas >= 1, "a PFS stores at least one copy");
        assert!(
            params.replicas <= server_nodes.len(),
            "more replicas than servers"
        );
        let rng = SplitMix64::new(params.retry.jitter_seed);
        let servers = server_nodes
            .into_iter()
            .zip(backends)
            .map(|(node, fs)| PfsServer {
                node,
                pool: MultiResource::new(params.daemons),
                fs,
                up: true,
                marked: false,
                slow: 1.0,
                missed: Vec::new(),
                dirlock: FifoResource::new(),
            })
            .collect();
        PfsSystem {
            params,
            servers,
            meter: FsMeter::default(),
            rng,
            retries: 0,
            failovers: 0,
            resyncs: 0,
            resync_bytes: 0,
        }
    }

    /// Number of I/O servers.
    pub fn servers(&self) -> usize {
        self.servers.len()
    }

    /// Client-observed transfer statistics.
    pub fn meter(&self) -> &FsMeter {
        &self.meter
    }

    /// A server's backing filesystem (for meters).
    pub fn server_fs(&self, idx: usize) -> &LocalFs {
        &self.servers[idx].fs
    }

    /// Whether server `idx` is running.
    pub fn server_up(&self, idx: usize) -> bool {
        self.servers[idx].up
    }

    /// Client RPC retransmissions so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Spans served by a non-primary replica holder so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Completed recovery catch-up episodes.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Bytes replayed onto recovered servers.
    pub fn resync_bytes(&self) -> u64 {
        self.resync_bytes
    }

    /// Writes recorded for replay once server `idx` recovers.
    pub fn missed_extents(&self, idx: usize) -> usize {
        self.servers[idx].missed.len()
    }

    /// Kills server `idx`: it stops replying to RPCs. Clients discover
    /// this lazily through their retry budget.
    pub fn fail_server(&mut self, idx: usize) {
        self.servers[idx].up = false;
    }

    /// Multiplies server `idx`'s service times by `factor` (1.0 restores
    /// nominal speed).
    pub fn set_server_slow(&mut self, idx: usize, factor: f64) {
        assert!(factor > 0.0, "slowdown factor must be positive");
        self.servers[idx].slow = factor;
    }

    /// Restarts server `idx` and deterministically replays the writes it
    /// missed from surviving replica holders (server-to-server catch-up
    /// traffic on the storage class). Returns the catch-up completion
    /// instant and the bytes replayed. Extents with no live source stay
    /// queued for a later recovery.
    pub fn recover_server(&mut self, net: &mut Network, now: Time, idx: usize) -> (Time, u64) {
        let n = self.servers.len();
        self.servers[idx].up = true;
        self.servers[idx].marked = false;
        let missed = std::mem::take(&mut self.servers[idx].missed);
        let overhead = self.params.rpc_overhead;
        let reps = self.params.replicas;
        let mut t = now;
        let mut bytes = 0u64;
        let mut requeue = Vec::new();
        for m in missed {
            let mut src = None;
            for r2 in 0..reps {
                if r2 == m.rank {
                    continue;
                }
                let cand = (m.s0 + r2) % n;
                if cand != idx && self.servers[cand].up {
                    src = Some((cand, r2));
                    break;
                }
            }
            let Some((src_idx, src_rank)) = src else {
                requeue.push(m);
                continue;
            };
            let (src_srv, dst) = index_pair(&mut self.servers, src_idx, idx);
            let t_read = src_srv.fs.read(t, rfile(m.file, src_rank), m.off, m.len);
            let t_read = stretch(src_srv.slow, t, t_read);
            let arrive = net.send(
                t_read,
                src_srv.node,
                dst.node,
                m.len + RPC_HEADER,
                TrafficClass::Storage,
            );
            let t2 = dst.pool.submit(arrive, overhead).end;
            t = dst.fs.write(t2, rfile(m.file, m.rank), m.off, m.len);
            bytes += m.len;
        }
        self.servers[idx].missed = requeue;
        if bytes > 0 {
            self.resyncs += 1;
            self.resync_bytes += bytes;
            let (server, start, end) = (idx, now, t);
            simcore::obs::emit(|| simcore::obs::ObsEvent::PfsResync {
                server,
                bytes,
                start,
                end,
            });
        }
        (t, bytes)
    }

    /// Splits `[offset, offset+len)` into per-server contiguous spans in
    /// the servers' own address spaces: chunk `c` of the file lives on
    /// server `c % N` at server-local offset `(c / N) × stripe + within`.
    /// Replica rank `r` of a span lives on server `(s + r) % N` at the
    /// identical local offsets (in the rank's shadow file).
    fn spans(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let n = self.servers.len() as u64;
        let stripe = self.params.stripe;
        let mut per: Vec<Option<(u64, u64)>> = vec![None; self.servers.len()];
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk = pos / stripe;
            let server = (chunk % n) as usize;
            let local = (chunk / n) * stripe + pos % stripe;
            let take = (stripe - pos % stripe).min(end - pos);
            match &mut per[server] {
                Some((_, l)) => *l += take,
                None => per[server] = Some((local, take)),
            }
            pos += take;
        }
        per.into_iter()
            .enumerate()
            .filter_map(|(s, v)| v.map(|(o, l)| (s, o, l)))
            .collect()
    }

    /// One metadata RPC to the first live server (server 0 when healthy).
    fn meta_rpc<F>(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
        op: &'static str,
        mut apply: F,
    ) -> Result<Time, PfsError>
    where
        F: FnMut(&mut LocalFs, Time) -> Time,
    {
        let overhead = self.params.rpc_overhead;
        let retry = self.params.retry;
        let mut issue = now;
        for idx in 0..self.servers.len() {
            let srv = &mut self.servers[idx];
            if srv.up && !srv.marked {
                let arrive = net.send(issue, client, srv.node, RPC_HEADER, TrafficClass::Storage);
                let t = srv.pool.submit(arrive, overhead).end;
                let done = apply(&mut srv.fs, t);
                let done = stretch(srv.slow, arrive, done);
                self.meter.meta_ops += 1;
                let reply = net.send(done, srv.node, client, RPC_REPLY, TrafficClass::Storage);
                if idx > 0 {
                    self.failovers += 1;
                    let at = issue;
                    simcore::obs::emit(|| simcore::obs::ObsEvent::PfsFailover {
                        op,
                        from: 0,
                        to: idx,
                        at,
                    });
                }
                return Ok(reply);
            }
            if !srv.marked {
                issue = detect_down(
                    net,
                    srv,
                    &mut self.rng,
                    &retry,
                    &mut self.retries,
                    op,
                    idx,
                    client,
                    issue,
                    RPC_HEADER,
                );
            }
        }
        Err(PfsError::Unavailable {
            op,
            file,
            at: issue,
            server: 0,
        })
    }

    /// Creates (or opens) `file`: one metadata RPC to the metadata server.
    pub fn open(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
        create: bool,
    ) -> Result<Time, PfsError> {
        self.meta_rpc(net, client, now, file, "META", move |fs, t| {
            if create {
                fs.create(t, file)
            } else {
                fs.open(t, file)
            }
        })
    }

    /// Closes `file` (metadata RPC; PVFS close does not flush — servers
    /// persist on their own schedule, `sync` forces it).
    pub fn close(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
    ) -> Result<Time, PfsError> {
        self.meta_rpc(net, client, now, file, "META", move |fs, t| {
            fs.close(t, file)
        })
    }

    /// The home server of `dir`'s namespace shard: a seed-stable FNV-1a
    /// hash of the directory id modulo the server count. Replica `r` of
    /// the shard lives `r` places after the home in ring order, mirroring
    /// the data path's chained-declustered placement.
    pub fn meta_home(&self, dir: FileId) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in dir.0.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.servers.len() as u64) as usize
    }

    /// One mdtest-class metadata verb against `dir`'s namespace shard.
    ///
    /// The verb is served by the first live replica holder in ring order
    /// from the shard's home server ([`meta_home`]); dead-but-unmarked
    /// holders burn the retry budget first, exactly like the data path.
    /// On the serving server the namespace update holds the shard's
    /// dir-entry lock (a FIFO resource) for its service interval — a
    /// single shared directory funnels every rank through one queue
    /// (mdtest-hard), unique per-rank directories spread across shards
    /// (mdtest-easy). With every holder down the verb surfaces a typed
    /// [`PfsError::Unavailable`].
    ///
    /// [`meta_home`]: PfsSystem::meta_home
    pub fn meta_verb(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Result<Time, PfsError> {
        let n = self.servers.len();
        let reps = self.params.replicas.max(1);
        let overhead = self.params.rpc_overhead;
        let retry = self.params.retry;
        let home = self.meta_home(dir);
        let op = match verb {
            MetaVerb::Create => "CREATE",
            MetaVerb::Stat => "STAT",
            MetaVerb::Unlink => "UNLINK",
            MetaVerb::Mkdir => "MKDIR",
            MetaVerb::Readdir => "READDIR",
        };
        let mut issue = now;
        for k in 0..reps {
            let idx = (home + k) % n;
            let srv = &mut self.servers[idx];
            if srv.up && !srv.marked {
                let arrive = net.send(issue, client, srv.node, RPC_HEADER, TrafficClass::Storage);
                let t = srv.pool.submit(arrive, overhead).end;
                let done = match verb {
                    MetaVerb::Create => srv.fs.create(t, target),
                    MetaVerb::Stat => srv.fs.stat(t, target),
                    MetaVerb::Unlink => srv.fs.unlink(t, target),
                    MetaVerb::Mkdir => srv.fs.mkdir(t, dir),
                    MetaVerb::Readdir => srv.fs.readdir(t, dir),
                };
                // The namespace update serializes on the shard's dir-entry
                // lock for its service interval (no-op when uncontended).
                let done = srv.dirlock.submit(t, done - t).end;
                let done = stretch(srv.slow, arrive, done);
                self.meter.meta_ops += 1;
                let reply = net.send(done, srv.node, client, RPC_REPLY, TrafficClass::Storage);
                if k > 0 {
                    self.failovers += 1;
                    let at = issue;
                    simcore::obs::emit(|| simcore::obs::ObsEvent::PfsFailover {
                        op,
                        from: home,
                        to: idx,
                        at,
                    });
                }
                return Ok(reply);
            }
            if !srv.marked {
                issue = detect_down(
                    net,
                    srv,
                    &mut self.rng,
                    &retry,
                    &mut self.retries,
                    op,
                    idx,
                    client,
                    issue,
                    RPC_HEADER,
                );
            }
        }
        Err(PfsError::Unavailable {
            op,
            file: target,
            at: issue,
            server: home,
        })
    }

    /// Writes `[offset, offset+len)`: per-server spans move in parallel to
    /// every live replica holder; the call completes when every holder has
    /// acknowledged. Holders that are down get the span recorded for
    /// resync; a span with no live holder at all is an error.
    pub fn write(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Time, PfsError> {
        // Panic audit: `ClusterMachine::{io_write,io_read}` filter
        // zero-length transfers as no-ops before dispatching here, so this
        // invariant is unreachable from op programs; it guards direct
        // embeddings against a division-free but meaningless span walk.
        assert!(len > 0, "zero-length write");
        let n = self.servers.len();
        let reps = self.params.replicas;
        let max_msg = self.params.max_msg;
        let overhead = self.params.rpc_overhead;
        let retry = self.params.retry;
        let mut done = now;
        for (s0, local_off, span) in self.spans(offset, len) {
            let mut wrote_any = false;
            let mut missed_ranks: Vec<usize> = Vec::new();
            let mut give_up = now;
            for r in 0..reps {
                let holder = (s0 + r) % n;
                let srv = &mut self.servers[holder];
                if srv.up && !srv.marked {
                    let f = rfile(file, r);
                    let mut pos = 0;
                    let mut server_done = now;
                    while pos < span {
                        let take = max_msg.min(span - pos);
                        let arrive = net.send(
                            now,
                            client,
                            srv.node,
                            take + RPC_HEADER,
                            TrafficClass::Storage,
                        );
                        let t = srv.pool.submit(arrive, overhead).end;
                        let t = srv.fs.write(t, f, local_off + pos, take);
                        let t = stretch(srv.slow, arrive, t);
                        let reply = net.send(t, srv.node, client, RPC_REPLY, TrafficClass::Storage);
                        server_done = server_done.max(reply);
                        pos += take;
                    }
                    done = done.max(server_done);
                    wrote_any = true;
                } else if !srv.marked {
                    let probe = max_msg.min(span) + RPC_HEADER;
                    let deadline = detect_down(
                        net,
                        srv,
                        &mut self.rng,
                        &retry,
                        &mut self.retries,
                        "WRITE",
                        holder,
                        client,
                        now,
                        probe,
                    );
                    give_up = give_up.max(deadline);
                    done = done.max(deadline);
                    missed_ranks.push(r);
                } else {
                    missed_ranks.push(r);
                }
            }
            if !wrote_any {
                return Err(PfsError::Unavailable {
                    op: "WRITE",
                    file,
                    at: give_up,
                    server: s0,
                });
            }
            // The primary holder missed the span but a surviving replica
            // holder absorbed it: that is a write failover.
            if missed_ranks.contains(&0) {
                if let Some(to) = (0..reps)
                    .find(|r| !missed_ranks.contains(r))
                    .map(|r| (s0 + r) % n)
                {
                    self.failovers += 1;
                    simcore::obs::emit(|| simcore::obs::ObsEvent::PfsFailover {
                        op: "WRITE",
                        from: s0,
                        to,
                        at: now,
                    });
                }
            }
            for r in missed_ranks {
                let holder = (s0 + r) % n;
                self.servers[holder].missed.push(Missed {
                    file,
                    rank: r,
                    off: local_off,
                    len: span,
                    s0,
                });
            }
        }
        self.meter.writes.record(len, done - now);
        Ok(done)
    }

    /// Reads `[offset, offset+len)` from all servers in parallel; every
    /// span is served by its first live replica holder in rank order,
    /// failing over past dead servers.
    pub fn read(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Time, PfsError> {
        // Panic audit: unreachable from op programs — see the write-side
        // note; zero-length reads are filtered upstream as no-ops.
        assert!(len > 0, "zero-length read");
        let n = self.servers.len();
        let reps = self.params.replicas;
        let max_msg = self.params.max_msg;
        let overhead = self.params.rpc_overhead;
        let retry = self.params.retry;
        let mut done = now;
        for (s0, local_off, span) in self.spans(offset, len) {
            let mut issue = now;
            let mut served = false;
            for r in 0..reps {
                let holder = (s0 + r) % n;
                let srv = &mut self.servers[holder];
                if srv.up && !srv.marked {
                    let f = rfile(file, r);
                    let mut pos = 0;
                    let mut server_done = issue;
                    while pos < span {
                        let take = max_msg.min(span - pos);
                        let arrive =
                            net.send(issue, client, srv.node, RPC_HEADER, TrafficClass::Storage);
                        let t = srv.pool.submit(arrive, overhead).end;
                        let t = srv.fs.read(t, f, local_off + pos, take);
                        let t = stretch(srv.slow, arrive, t);
                        let reply =
                            net.send(t, srv.node, client, take + RPC_REPLY, TrafficClass::Storage);
                        server_done = server_done.max(reply);
                        pos += take;
                    }
                    if r > 0 {
                        self.failovers += 1;
                        let at = issue;
                        simcore::obs::emit(|| simcore::obs::ObsEvent::PfsFailover {
                            op: "READ",
                            from: s0,
                            to: holder,
                            at,
                        });
                    }
                    done = done.max(server_done);
                    served = true;
                    break;
                }
                if !srv.marked {
                    issue = detect_down(
                        net,
                        srv,
                        &mut self.rng,
                        &retry,
                        &mut self.retries,
                        "READ",
                        holder,
                        client,
                        issue,
                        RPC_HEADER,
                    );
                }
            }
            if !served {
                return Err(PfsError::Unavailable {
                    op: "READ",
                    file,
                    at: issue,
                    server: s0,
                });
            }
        }
        self.meter.reads.record(len, done - now);
        Ok(done)
    }

    /// Forces everything durable on every live server (dead servers are
    /// skipped — their state is reconciled at recovery).
    pub fn sync(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
    ) -> Result<Time, PfsError> {
        let overhead = self.params.rpc_overhead;
        let retry = self.params.retry;
        let reps = self.params.replicas;
        let mut done = now;
        let mut any = false;
        for idx in 0..self.servers.len() {
            let srv = &mut self.servers[idx];
            if srv.up && !srv.marked {
                let arrive = net.send(now, client, srv.node, RPC_HEADER, TrafficClass::Storage);
                let mut t = srv.pool.submit(arrive, overhead).end;
                for r in 0..reps {
                    t = srv.fs.fsync(t, rfile(file, r));
                }
                let t = stretch(srv.slow, arrive, t);
                let reply = net.send(t, srv.node, client, RPC_REPLY, TrafficClass::Storage);
                done = done.max(reply);
                any = true;
            } else if !srv.marked {
                let deadline = detect_down(
                    net,
                    srv,
                    &mut self.rng,
                    &retry,
                    &mut self.retries,
                    "SYNC",
                    idx,
                    client,
                    now,
                    RPC_HEADER,
                );
                done = done.max(deadline);
            }
        }
        if !any {
            return Err(PfsError::Unavailable {
                op: "SYNC",
                file,
                at: done,
                server: 0,
            });
        }
        Ok(done)
    }

    /// Declares pre-existing content (striped across servers; every
    /// replica rank holds a full copy).
    pub fn preallocate(&mut self, file: FileId, size: u64) {
        let n = self.servers.len() as u64;
        let per_server = size.div_ceil(n);
        for r in 0..self.params.replicas {
            let f = rfile(file, r);
            for srv in &mut self.servers {
                srv.fs.preallocate(f, per_server);
            }
        }
    }
}

impl MetaOps for PfsSystem {
    type Ctx<'a> = (&'a mut Network, NodeId);
    type Error = PfsError;

    fn meta(
        &mut self,
        (net, client): Self::Ctx<'_>,
        now: Time,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Result<Time, PfsError> {
        self.meta_verb(net, client, now, verb, dir, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFsParams;
    use netsim::FabricParams;
    use simcore::{Bandwidth, GIB, KIB, MIB};
    use storage::{Disk, DiskParams, Jbod};

    const F: FileId = FileId(5);

    fn pfs_with(n: usize, params: PfsParams) -> (Network, PfsSystem) {
        let net = Network::split(8, FabricParams::gigabit_ethernet());
        let backends: Vec<LocalFs> = (0..n)
            .map(|i| {
                LocalFs::new(
                    LocalFsParams::ext4(2 * GIB),
                    Box::new(Jbod::new(Disk::new(
                        DiskParams::sata_7200(160, 80),
                        i as u64 + 1,
                    ))),
                )
            })
            .collect();
        let system = PfsSystem::new(params, (0..n).collect(), backends);
        (net, system)
    }

    fn pfs(n: usize) -> (Network, PfsSystem) {
        pfs_with(n, PfsParams::default())
    }

    fn replicated(n: usize) -> (Network, PfsSystem) {
        pfs_with(
            n,
            PfsParams {
                replicas: 2,
                ..PfsParams::default()
            },
        )
    }

    #[test]
    fn spans_cover_request_round_robin() {
        let (_, p) = pfs(4);
        let spans = p.spans(0, 256 * KIB + 100);
        let total: u64 = spans.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 256 * KIB + 100);
        // 64 KiB stripes: first four chunks land on servers 0..3, the tail
        // (100 B of chunk 4) wraps to server 0.
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans[0].2, 64 * KIB + 100);
    }

    #[test]
    fn server_local_offsets_are_compacted() {
        let (_, p) = pfs(2);
        // Chunk 2 of the file (offset 128 KiB) is chunk 1 on server 0.
        let spans = p.spans(128 * KIB, 64 * KIB);
        assert_eq!(spans, vec![(0, 64 * KIB, 64 * KIB)]);
    }

    #[test]
    fn striping_scales_aggregate_bandwidth() {
        let measure = |n: usize| {
            let (mut net, mut p) = pfs(n);
            let client = 7; // a node that hosts no server
            let t = p.open(&mut net, client, Time::ZERO, F, true).unwrap();
            let start = t;
            let mut now = t;
            let total = 512 * MIB;
            let mut off = 0;
            while off < total {
                now = p.write(&mut net, client, now, F, off, 16 * MIB).unwrap();
                off += 16 * MIB;
            }
            Bandwidth::measured(total, now - start).as_mib_per_sec()
        };
        let one = measure(1);
        let four = measure(4);
        // One client is wire-bound (~112 MiB/s) either way; with one server
        // it is also disk-bound. Four servers must not be slower.
        assert!(four >= one, "4 servers {four} vs 1 server {one}");
        assert!(four > 80.0, "striped writes at {four} MiB/s");
    }

    #[test]
    fn multiple_clients_exceed_single_wire_speed() {
        let (mut net, mut p) = pfs(4);
        // Clients 5, 6, 7 write disjoint regions concurrently; drive them
        // round-robin so operations interleave in simulation time (the MPI
        // runtime's yielding does this automatically).
        let t = p.open(&mut net, 5, Time::ZERO, F, true).unwrap();
        let start = t;
        let clients = [5usize, 6, 7];
        let mut clocks = [t; 3];
        for round in 0..16u64 {
            for (i, &client) in clients.iter().enumerate() {
                let base = i as u64 * 256 * MIB + round * 16 * MIB;
                clocks[i] = p
                    .write(&mut net, client, clocks[i], F, base, 16 * MIB)
                    .unwrap();
            }
        }
        let done = clocks.into_iter().max().unwrap();
        let agg = Bandwidth::measured(3 * 256 * MIB, done - start).as_mib_per_sec();
        // Three client links into four server links: the aggregate must
        // beat a single GigE link — the whole point of a parallel FS.
        assert!(agg > 150.0, "aggregate {agg} MiB/s");
    }

    #[test]
    fn read_after_write_roundtrip() {
        let (mut net, mut p) = pfs(3);
        let t = p.open(&mut net, 4, Time::ZERO, F, true).unwrap();
        let t = p.write(&mut net, 4, t, F, 0, 8 * MIB).unwrap();
        let t = p.sync(&mut net, 4, t, F).unwrap();
        let t2 = p.read(&mut net, 4, t, F, 0, 8 * MIB).unwrap();
        assert!(t2 > t);
        assert_eq!(p.meter().writes.bytes(), 8 * MIB);
        assert_eq!(p.meter().reads.bytes(), 8 * MIB);
    }

    #[test]
    fn preallocate_feeds_all_servers() {
        let (mut net, mut p) = pfs(2);
        p.preallocate(F, 10 * MIB);
        let t = p.read(&mut net, 3, Time::ZERO, F, 0, 10 * MIB).unwrap();
        assert!(t > Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_deployment_rejected() {
        PfsSystem::new(PfsParams::default(), vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "more replicas than servers")]
    fn over_replication_rejected() {
        pfs_with(
            2,
            PfsParams {
                replicas: 3,
                ..PfsParams::default()
            },
        );
    }

    #[test]
    fn failed_server_reads_fail_over_to_replicas() {
        let (mut net, mut p) = replicated(3);
        p.preallocate(F, 12 * MIB);
        p.fail_server(1);
        let t = p.read(&mut net, 5, Time::ZERO, F, 0, 12 * MIB).unwrap();
        assert!(t > Time::ZERO);
        // Every byte arrived despite the dead server...
        assert_eq!(p.meter().reads.bytes(), 12 * MIB);
        // ...after the retry budget detected it and spans failed over.
        assert!(p.retries() > 0, "detection burns retransmissions");
        assert!(p.failovers() > 0, "replica holders served the dead spans");
        // Detection is paid once: a second read skips the marked server.
        let retries = p.retries();
        let t2 = p.read(&mut net, 5, t, F, 0, 12 * MIB).unwrap();
        assert!(t2 > t);
        assert_eq!(p.retries(), retries, "marked servers are skipped");
    }

    #[test]
    fn degraded_writes_record_missed_extents_and_resync_on_recovery() {
        let (mut net, mut p) = replicated(3);
        let t = p.open(&mut net, 6, Time::ZERO, F, true).unwrap();
        p.fail_server(2);
        let t = p.write(&mut net, 6, t, F, 0, 6 * MIB).unwrap();
        assert_eq!(p.meter().writes.bytes(), 6 * MIB);
        assert!(p.missed_extents(2) > 0, "dead holder owes writes");
        let (t2, replayed) = p.recover_server(&mut net, t, 2);
        assert!(replayed > 0, "recovery replays the missed bytes");
        assert!(t2 > t, "catch-up traffic takes time");
        assert_eq!(p.missed_extents(2), 0);
        assert_eq!(p.resyncs(), 1);
        assert_eq!(p.resync_bytes(), replayed);
    }

    #[test]
    fn losing_every_replica_is_a_typed_error() {
        let (mut net, mut p) = replicated(2);
        p.preallocate(F, 4 * MIB);
        p.fail_server(0);
        p.fail_server(1);
        let err = p.read(&mut net, 5, Time::ZERO, F, 0, 4 * MIB).unwrap_err();
        match err {
            PfsError::Unavailable { op, file, at, .. } => {
                assert_eq!(op, "READ");
                assert_eq!(file, F);
                assert!(at > Time::ZERO, "the client waited out its budget");
            }
        }
    }

    #[test]
    fn unreplicated_deployment_survives_nothing() {
        let (mut net, mut p) = pfs(2);
        p.preallocate(F, 4 * MIB);
        p.fail_server(0);
        assert!(p.read(&mut net, 5, Time::ZERO, F, 0, 4 * MIB).is_err());
    }

    #[test]
    fn metadata_fails_over_past_a_dead_server_zero() {
        let (mut net, mut p) = replicated(2);
        p.fail_server(0);
        let t = p.open(&mut net, 5, Time::ZERO, F, true).unwrap();
        assert!(t > Time::ZERO);
        assert!(p.failovers() > 0, "server 1 served the metadata RPC");
    }

    #[test]
    fn slow_server_stretches_degraded_reads_only() {
        let elapsed = |slow: Option<f64>| {
            let (mut net, mut p) = pfs(2);
            p.preallocate(F, 8 * MIB);
            if let Some(f) = slow {
                p.set_server_slow(1, f);
            }
            p.read(&mut net, 5, Time::ZERO, F, 0, 8 * MIB).unwrap()
        };
        let nominal = elapsed(None);
        let unit = elapsed(Some(1.0));
        let dragging = elapsed(Some(8.0));
        assert_eq!(nominal, unit, "factor 1.0 is exactly a no-op");
        assert!(dragging > nominal, "an 8x slowdown shows up end-to-end");
    }

    /// Finds a directory id homed on shard `want` (4-server deployment).
    fn dir_on_shard(p: &PfsSystem, want: usize) -> FileId {
        (0..256u64)
            .map(|i| FileId(1000 + i))
            .find(|&d| p.meta_home(d) == want)
            .expect("some id lands on every shard")
    }

    #[test]
    fn meta_verbs_shard_across_servers() {
        let (mut net, mut p) = pfs(4);
        let homes: std::collections::BTreeSet<usize> =
            (0..16u64).map(|i| p.meta_home(FileId(1000 + i))).collect();
        assert!(homes.len() > 1, "hashing must spread dirs across shards");
        // Every verb completes on a healthy deployment and counts once.
        let dir = dir_on_shard(&p, 2);
        let mut t = Time::ZERO;
        for v in MetaVerb::ALL {
            t = p.meta_verb(&mut net, 5, t, v, dir, F).unwrap();
        }
        assert!(t > Time::ZERO);
        assert_eq!(p.meter().meta_ops, 5);
        assert_eq!(p.retries(), 0, "healthy metadata path never retransmits");
        assert_eq!(p.failovers(), 0);
        // The shard's home server did the work.
        assert_eq!(p.server_fs(2).meter().meta_ops, 5);
    }

    #[test]
    fn shared_dir_serializes_on_the_shard_lock() {
        // Two clients issue a create at the same instant: into the same
        // directory the second op queues on the shard's dir-entry lock,
        // into dirs on different shards both proceed in parallel.
        let makespan = |same_dir: bool| {
            let (mut net, mut p) = pfs(4);
            let d1 = dir_on_shard(&p, 0);
            let d2 = if same_dir { d1 } else { dir_on_shard(&p, 1) };
            let t1 = p
                .meta_verb(&mut net, 5, Time::ZERO, MetaVerb::Create, d1, FileId(7000))
                .unwrap();
            let t2 = p
                .meta_verb(&mut net, 6, Time::ZERO, MetaVerb::Create, d2, FileId(7001))
                .unwrap();
            t1.max(t2)
        };
        let contended = makespan(true);
        let spread = makespan(false);
        assert!(
            contended > spread,
            "shared-dir ops ({contended:?}) must queue behind the shard lock vs spread dirs ({spread:?})"
        );
    }

    #[test]
    fn metadata_fails_over_to_the_shard_replica() {
        let (mut net, mut p) = replicated(4);
        let dir = dir_on_shard(&p, 1);
        p.fail_server(1);
        let t = p
            .meta_verb(&mut net, 5, Time::ZERO, MetaVerb::Mkdir, dir, dir)
            .unwrap();
        assert!(t > Time::ZERO);
        assert!(p.retries() > 0, "detection burns the retry budget");
        assert!(p.failovers() > 0, "the next ring server served the shard");
        // Server 2 (home + 1) holds replica 1 of shard 1.
        assert_eq!(p.server_fs(2).meter().meta_ops, 1);
    }

    #[test]
    fn unreplicated_shard_outage_is_a_typed_error() {
        let (mut net, mut p) = pfs(4);
        let dir = dir_on_shard(&p, 3);
        p.fail_server(3);
        let err = p
            .meta_verb(&mut net, 5, Time::ZERO, MetaVerb::Create, dir, F)
            .unwrap_err();
        match err {
            PfsError::Unavailable { op, server, at, .. } => {
                assert_eq!(op, "CREATE");
                assert_eq!(server, 3, "the error names the shard's home");
                assert!(at > Time::ZERO);
            }
        }
    }

    proptest::proptest! {
        /// With replicas >= 2, any single-server failure leaves every
        /// metadata verb able to complete successfully (degraded via
        /// failover, never failed) — the metadata mirror of the
        /// full-byte-count degraded-read property below.
        #[test]
        fn degraded_metadata_ops_always_succeed(
            dead in 0usize..4,
            dir_id in 0u64..64,
            n_files in 1u64..16,
        ) {
            let (mut net, mut p) = replicated(4);
            p.fail_server(dead);
            let dir = FileId(1000 + dir_id);
            let mut t = p
                .meta_verb(&mut net, 5, Time::ZERO, MetaVerb::Mkdir, dir, dir)
                .unwrap();
            for i in 0..n_files {
                let f = FileId(2000 + dir_id * 100 + i);
                t = p.meta_verb(&mut net, 5, t, MetaVerb::Create, dir, f).unwrap();
                t = p.meta_verb(&mut net, 5, t, MetaVerb::Stat, dir, f).unwrap();
                t = p.meta_verb(&mut net, 5, t, MetaVerb::Unlink, dir, f).unwrap();
            }
            t = p.meta_verb(&mut net, 5, t, MetaVerb::Readdir, dir, dir).unwrap();
            proptest::prop_assert!(t > Time::ZERO);
            proptest::prop_assert_eq!(p.meter().meta_ops, 2 + 3 * n_files);
        }
    }

    proptest::proptest! {
        /// With replicas >= 2, any single-server failure leaves every read
        /// able to return its full byte count (degraded, never short).
        #[test]
        fn degraded_reads_return_full_byte_counts(
            dead in 0usize..4,
            offset_kib in 0u64..512,
            len_kib in 1u64..1024,
        ) {
            let (mut net, mut p) = replicated(4);
            p.preallocate(F, 2 * GIB);
            p.fail_server(dead);
            let len = len_kib * KIB;
            let t = p
                .read(&mut net, 5, Time::ZERO, F, offset_kib * KIB, len)
                .unwrap();
            proptest::prop_assert!(t > Time::ZERO);
            proptest::prop_assert_eq!(p.meter().reads.bytes(), len);
        }
    }
}
