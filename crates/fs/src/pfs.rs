//! A PVFS-like parallel filesystem.
//!
//! The paper's related work revolves around parallel filesystems (PVFS,
//! GPFS, Lustre) and its configuration analysis lists "number and placement
//! of I/O node" as a configurable factor its testbeds could not vary. This
//! model makes that factor real: files are striped round-robin across `N`
//! I/O servers (PVFS default stripe 64 KiB); clients talk to all servers in
//! parallel over the storage network.
//!
//! Faithful PVFS semantics, which are what make it interesting next to NFS:
//!
//! * **no client-side data caching** — every operation moves bytes;
//! * **no locking** — MPI-IO runs natively (non-overlapping writes are the
//!   application's contract), so there is no `lockd` serialization;
//! * metadata lives on server 0 (create/open/close are one RPC there).

use crate::file::FileId;
use crate::local::{FsMeter, LocalFs};
use netsim::{Network, NodeId, TrafficClass};
use simcore::{MultiResource, Time};

/// RPC framing overhead on the wire.
const RPC_HEADER: u64 = 120;
/// Data-less reply size.
const RPC_REPLY: u64 = 96;

/// Parameters of a parallel filesystem deployment.
#[derive(Clone, Debug)]
pub struct PfsParams {
    /// Stripe unit (PVFS default: 64 KiB).
    pub stripe: u64,
    /// Per-server daemon concurrency.
    pub daemons: usize,
    /// Per-RPC server dispatch cost.
    pub rpc_overhead: Time,
    /// Largest single network transfer (larger spans are pipelined in
    /// messages of this size).
    pub max_msg: u64,
}

impl Default for PfsParams {
    fn default() -> Self {
        PfsParams {
            stripe: 64 * 1024,
            daemons: 8,
            rpc_overhead: Time::from_micros(70),
            max_msg: 4 * 1024 * 1024,
        }
    }
}

struct PfsServer {
    node: NodeId,
    pool: MultiResource,
    fs: LocalFs,
}

/// A deployed parallel filesystem: `N` I/O servers, each with its own
/// backing [`LocalFs`] (dedicated data disks on the server nodes).
pub struct PfsSystem {
    params: PfsParams,
    servers: Vec<PfsServer>,
    meter: FsMeter,
}

impl PfsSystem {
    /// Deploys servers on `server_nodes`, one backing filesystem each.
    pub fn new(params: PfsParams, server_nodes: Vec<NodeId>, backends: Vec<LocalFs>) -> PfsSystem {
        assert!(!server_nodes.is_empty(), "a PFS needs at least one server");
        assert_eq!(server_nodes.len(), backends.len(), "one backend per server");
        let servers = server_nodes
            .into_iter()
            .zip(backends)
            .map(|(node, fs)| PfsServer {
                node,
                pool: MultiResource::new(params.daemons),
                fs,
            })
            .collect();
        PfsSystem {
            params,
            servers,
            meter: FsMeter::default(),
        }
    }

    /// Number of I/O servers.
    pub fn servers(&self) -> usize {
        self.servers.len()
    }

    /// Client-observed transfer statistics.
    pub fn meter(&self) -> &FsMeter {
        &self.meter
    }

    /// A server's backing filesystem (for meters).
    pub fn server_fs(&self, idx: usize) -> &LocalFs {
        &self.servers[idx].fs
    }

    /// Splits `[offset, offset+len)` into per-server contiguous spans in
    /// the servers' own address spaces: chunk `c` of the file lives on
    /// server `c % N` at server-local offset `(c / N) × stripe + within`.
    fn spans(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let n = self.servers.len() as u64;
        let stripe = self.params.stripe;
        let mut per: Vec<Option<(u64, u64)>> = vec![None; self.servers.len()];
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let chunk = pos / stripe;
            let server = (chunk % n) as usize;
            let local = (chunk / n) * stripe + pos % stripe;
            let take = (stripe - pos % stripe).min(end - pos);
            match &mut per[server] {
                Some((_, l)) => *l += take,
                None => per[server] = Some((local, take)),
            }
            pos += take;
        }
        per.into_iter()
            .enumerate()
            .filter_map(|(s, v)| v.map(|(o, l)| (s, o, l)))
            .collect()
    }

    /// Creates (or opens) `file`: one metadata RPC to server 0.
    pub fn open(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
        create: bool,
    ) -> Time {
        let srv = &mut self.servers[0];
        let arrive = net.send(now, client, srv.node, RPC_HEADER, TrafficClass::Storage);
        let t = srv.pool.submit(arrive, self.params.rpc_overhead).end;
        let done = if create {
            srv.fs.create(t, file)
        } else {
            srv.fs.open(t, file)
        };
        self.meter.meta_ops += 1;
        net.send(done, srv.node, client, RPC_REPLY, TrafficClass::Storage)
    }

    /// Closes `file` (metadata RPC; PVFS close does not flush — servers
    /// persist on their own schedule, `sync` forces it).
    pub fn close(&mut self, net: &mut Network, client: NodeId, now: Time, file: FileId) -> Time {
        let srv = &mut self.servers[0];
        let arrive = net.send(now, client, srv.node, RPC_HEADER, TrafficClass::Storage);
        let t = srv.pool.submit(arrive, self.params.rpc_overhead).end;
        let done = srv.fs.close(t, file);
        self.meter.meta_ops += 1;
        net.send(done, srv.node, client, RPC_REPLY, TrafficClass::Storage)
    }

    /// Writes `[offset, offset+len)`: per-server spans move in parallel;
    /// the call completes when every server has acknowledged.
    pub fn write(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        assert!(len > 0, "zero-length write");
        let mut done = now;
        let max_msg = self.params.max_msg;
        let overhead = self.params.rpc_overhead;
        for (s, local_off, span) in self.spans(offset, len) {
            let srv = &mut self.servers[s];
            let mut pos = 0;
            let mut server_done = now;
            while pos < span {
                let take = max_msg.min(span - pos);
                let arrive = net.send(
                    now,
                    client,
                    srv.node,
                    take + RPC_HEADER,
                    TrafficClass::Storage,
                );
                let t = srv.pool.submit(arrive, overhead).end;
                let t = srv.fs.write(t, file, local_off + pos, take);
                let reply = net.send(t, srv.node, client, RPC_REPLY, TrafficClass::Storage);
                server_done = server_done.max(reply);
                pos += take;
            }
            done = done.max(server_done);
        }
        self.meter.writes.record(len, done - now);
        done
    }

    /// Reads `[offset, offset+len)` from all servers in parallel.
    pub fn read(
        &mut self,
        net: &mut Network,
        client: NodeId,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        assert!(len > 0, "zero-length read");
        let mut done = now;
        let max_msg = self.params.max_msg;
        let overhead = self.params.rpc_overhead;
        for (s, local_off, span) in self.spans(offset, len) {
            let srv = &mut self.servers[s];
            let mut pos = 0;
            let mut server_done = now;
            while pos < span {
                let take = max_msg.min(span - pos);
                let arrive = net.send(now, client, srv.node, RPC_HEADER, TrafficClass::Storage);
                let t = srv.pool.submit(arrive, overhead).end;
                let t = srv.fs.read(t, file, local_off + pos, take);
                let reply = net.send(t, srv.node, client, take + RPC_REPLY, TrafficClass::Storage);
                server_done = server_done.max(reply);
                pos += take;
            }
            done = done.max(server_done);
        }
        self.meter.reads.record(len, done - now);
        done
    }

    /// Forces everything durable on every server.
    pub fn sync(&mut self, net: &mut Network, client: NodeId, now: Time, file: FileId) -> Time {
        let mut done = now;
        for srv in &mut self.servers {
            let arrive = net.send(now, client, srv.node, RPC_HEADER, TrafficClass::Storage);
            let t = srv.pool.submit(arrive, self.params.rpc_overhead).end;
            let t = srv.fs.fsync(t, file);
            let reply = net.send(t, srv.node, client, RPC_REPLY, TrafficClass::Storage);
            done = done.max(reply);
        }
        done
    }

    /// Declares pre-existing content (striped across servers).
    pub fn preallocate(&mut self, file: FileId, size: u64) {
        let n = self.servers.len() as u64;
        let per_server = size.div_ceil(n);
        for srv in &mut self.servers {
            srv.fs.preallocate(file, per_server);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFsParams;
    use netsim::FabricParams;
    use simcore::{Bandwidth, GIB, KIB, MIB};
    use storage::{Disk, DiskParams, Jbod};

    const F: FileId = FileId(5);

    fn pfs(n: usize) -> (Network, PfsSystem) {
        let net = Network::split(8, FabricParams::gigabit_ethernet());
        let backends: Vec<LocalFs> = (0..n)
            .map(|i| {
                LocalFs::new(
                    LocalFsParams::ext4(2 * GIB),
                    Box::new(Jbod::new(Disk::new(
                        DiskParams::sata_7200(160, 80),
                        i as u64 + 1,
                    ))),
                )
            })
            .collect();
        let system = PfsSystem::new(PfsParams::default(), (0..n).collect(), backends);
        (net, system)
    }

    #[test]
    fn spans_cover_request_round_robin() {
        let (_, p) = pfs(4);
        let spans = p.spans(0, 256 * KIB + 100);
        let total: u64 = spans.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(total, 256 * KIB + 100);
        // 64 KiB stripes: first four chunks land on servers 0..3, the tail
        // (100 B of chunk 4) wraps to server 0.
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans[0].2, 64 * KIB + 100);
    }

    #[test]
    fn server_local_offsets_are_compacted() {
        let (_, p) = pfs(2);
        // Chunk 2 of the file (offset 128 KiB) is chunk 1 on server 0.
        let spans = p.spans(128 * KIB, 64 * KIB);
        assert_eq!(spans, vec![(0, 64 * KIB, 64 * KIB)]);
    }

    #[test]
    fn striping_scales_aggregate_bandwidth() {
        let measure = |n: usize| {
            let (mut net, mut p) = pfs(n);
            let client = 7; // a node that hosts no server
            let t = p.open(&mut net, client, Time::ZERO, F, true);
            let start = t;
            let mut now = t;
            let total = 512 * MIB;
            let mut off = 0;
            while off < total {
                now = p.write(&mut net, client, now, F, off, 16 * MIB);
                off += 16 * MIB;
            }
            Bandwidth::measured(total, now - start).as_mib_per_sec()
        };
        let one = measure(1);
        let four = measure(4);
        // One client is wire-bound (~112 MiB/s) either way; with one server
        // it is also disk-bound. Four servers must not be slower.
        assert!(four >= one, "4 servers {four} vs 1 server {one}");
        assert!(four > 80.0, "striped writes at {four} MiB/s");
    }

    #[test]
    fn multiple_clients_exceed_single_wire_speed() {
        let (mut net, mut p) = pfs(4);
        // Clients 5, 6, 7 write disjoint regions concurrently; drive them
        // round-robin so operations interleave in simulation time (the MPI
        // runtime's yielding does this automatically).
        let t = p.open(&mut net, 5, Time::ZERO, F, true);
        let start = t;
        let clients = [5usize, 6, 7];
        let mut clocks = [t; 3];
        for round in 0..16u64 {
            for (i, &client) in clients.iter().enumerate() {
                let base = i as u64 * 256 * MIB + round * 16 * MIB;
                clocks[i] = p.write(&mut net, client, clocks[i], F, base, 16 * MIB);
            }
        }
        let done = clocks.into_iter().max().unwrap();
        let agg = Bandwidth::measured(3 * 256 * MIB, done - start).as_mib_per_sec();
        // Three client links into four server links: the aggregate must
        // beat a single GigE link — the whole point of a parallel FS.
        assert!(agg > 150.0, "aggregate {agg} MiB/s");
    }

    #[test]
    fn read_after_write_roundtrip() {
        let (mut net, mut p) = pfs(3);
        let t = p.open(&mut net, 4, Time::ZERO, F, true);
        let t = p.write(&mut net, 4, t, F, 0, 8 * MIB);
        let t = p.sync(&mut net, 4, t, F);
        let t2 = p.read(&mut net, 4, t, F, 0, 8 * MIB);
        assert!(t2 > t);
        assert_eq!(p.meter().writes.bytes(), 8 * MIB);
        assert_eq!(p.meter().reads.bytes(), 8 * MIB);
    }

    #[test]
    fn preallocate_feeds_all_servers() {
        let (mut net, mut p) = pfs(2);
        p.preallocate(F, 10 * MIB);
        let t = p.read(&mut net, 3, Time::ZERO, F, 0, 10 * MIB);
        assert!(t > Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_deployment_rejected() {
        PfsSystem::new(PfsParams::default(), vec![], vec![]);
    }
}
