//! # fs — filesystem models
//!
//! The middle levels of the paper's I/O path:
//!
//! * [`range_cache::RangeCache`] — a byte-accurate page-cache model: an LRU
//!   set of cached byte ranges per file with clean/dirty state. Byte-range
//!   (rather than fixed-page) tracking keeps tiny strided writes — the NAS
//!   BT-IO *simple* subtype's 1.6 KB operations — costed exactly.
//! * [`local::LocalFs`] — an ext4-like local filesystem: extent allocation,
//!   page-cached reads with readahead, write-back with a dirty limit
//!   (writers throttle to device speed once the limit is hit), `fsync`,
//!   and metadata operation costs.
//! * [`pfs`] — a PVFS-like parallel filesystem: files striped across
//!   multiple I/O servers, no client caching, no locking — the alternative
//!   I/O architecture the paper's configurable factor "number and
//!   placement of I/O node" points at.
//! * [`nfs`] — an NFSv3-like network filesystem: the client caches data,
//!   streams WRITE/READ RPCs of `wsize`/`rsize` bytes with a bounded
//!   in-flight window over the storage network, and commits on close/fsync;
//!   the server services RPCs from a daemon pool on top of its own
//!   [`local::LocalFs`].
//!
//! Together these reproduce the effects the paper's evaluation hinges on:
//! reads served "on buffer/cache and not physically on the disk" exceed the
//! characterized device bandwidth (usage > 100%), IOzone-style 2×RAM files
//! defeat the cache, and NFS throughput is bounded by the data network and
//! the server's device level.

pub mod file;
pub mod local;
pub mod meta;
pub mod nfs;
pub mod pfs;
pub mod range_cache;

pub use file::FileId;
pub use local::{LocalFs, LocalFsParams};
pub use meta::{MetaOps, MetaVerb};
pub use nfs::{NfsClient, NfsClientParams, NfsError, NfsRetryParams, NfsServer, NfsServerParams};
pub use pfs::{PfsError, PfsParams, PfsSystem};
pub use range_cache::RangeCache;
