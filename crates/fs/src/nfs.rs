//! An NFSv3-like network filesystem.
//!
//! * [`NfsServer`] — an I/O node: a daemon pool (`nfsd` threads) serving
//!   RPCs on top of a [`LocalFs`] (which supplies the server page cache and
//!   the RAID/JBOD device level below it).
//! * [`NfsClient`] — one mount on a compute node: a client page cache with
//!   write-behind (WRITE RPCs of `wsize` bytes, a bounded in-flight window
//!   providing back-pressure), pipelined READ RPCs of `rsize` bytes with
//!   readahead, close-to-open consistency (flush on close, cache
//!   invalidation on open) and COMMIT on fsync.
//!
//! Client methods borrow the [`Network`] and the server explicitly — the
//! cluster owns both and the simulation issues operations in global time
//! order, which keeps every underlying timeline exact.

use crate::file::FileId;
use crate::local::{FsMeter, LocalFs};
use crate::meta::{MetaOps, MetaVerb};
use crate::range_cache::{RangeCache, RangeRef};
use netsim::{Network, NodeId, TrafficClass};
use simcore::{Bandwidth, FifoResource, FxHashMap, MultiResource, SplitMix64, Time};
use std::collections::VecDeque;
use std::fmt;

/// NFS RPC header/trailer size on the wire.
const RPC_HEADER: u64 = 136;
/// Size of a reply that carries no data payload.
const RPC_REPLY: u64 = 112;

/// A client-visible NFS failure.
///
/// The simulated client behaves like a `soft` mount: an RPC whose reply does
/// not arrive within the (exponentially backed-off) retransmission budget
/// surfaces as an error instead of hanging the application forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NfsError {
    /// The retransmission budget was exhausted without a reply.
    MajorTimeout {
        /// RPC procedure that gave up (`"WRITE"`, `"READ"`, ...).
        op: &'static str,
        /// File the operation targeted.
        file: FileId,
        /// Instant the client gave up (the final retransmission deadline).
        at: Time,
        /// RPC attempts made (first send plus retransmissions).
        attempts: u32,
    },
}

impl NfsError {
    /// The simulated instant the error was observed by the caller; lets the
    /// application layer keep its clock moving past a failed operation.
    pub fn at(&self) -> Time {
        match *self {
            NfsError::MajorTimeout { at, .. } => at,
        }
    }
}

impl fmt::Display for NfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfsError::MajorTimeout {
                op,
                file,
                at,
                attempts,
            } => write!(
                f,
                "nfs: {op} on file {} major timeout after {attempts} attempts at {:.3}s",
                file.0,
                at.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for NfsError {}

/// RPC retransmission discipline of a mount (the `timeo`/`retrans` options).
#[derive(Clone, Copy, Debug)]
pub struct NfsRetryParams {
    /// Initial per-RPC timeout; multiplied by `backoff_mult` on every
    /// retransmission (doubles by default).
    pub timeo: Time,
    /// Retransmissions after the first send before a major timeout.
    pub retrans: u32,
    /// Ceiling for the backed-off timeout.
    pub max_timeo: Time,
    /// Deterministic jitter added to each retransmission instant, as a
    /// fraction of the current timeout (desynchronizes client herds).
    pub jitter_frac: f64,
    /// Multiplier applied to the timeout after each retransmission
    /// (classic exponential backoff doubles; values below 1 are treated
    /// as 1, i.e. a constant timeout).
    pub backoff_mult: u32,
    /// Base seed of the mount's jitter stream; XORed with the node id at
    /// mount time so every mount draws a distinct deterministic sequence.
    /// Takes effect when the client is constructed — [`NfsClient::set_retry`]
    /// reseeds the stream only if this value changes.
    pub jitter_seed: u64,
}

impl NfsRetryParams {
    /// Linux NFS-over-TCP defaults: `timeo=600` (60 s), `retrans=2`.
    /// Healthy RPCs never get near the timeout, so retransmission cost is
    /// strictly an under-fault behaviour.
    pub fn linux_tcp() -> NfsRetryParams {
        NfsRetryParams {
            timeo: Time::from_secs(60),
            retrans: 2,
            max_timeo: Time::from_secs(600),
            jitter_frac: 0.1,
            backoff_mult: 2,
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }

    /// An impatient discipline for fault drills: short initial timeout and
    /// a bounded budget, so stall windows are observable in test-sized runs.
    pub fn impatient(timeo: Time, retrans: u32) -> NfsRetryParams {
        NfsRetryParams {
            timeo,
            retrans,
            max_timeo: Time::from_secs(60),
            jitter_frac: 0.1,
            backoff_mult: 2,
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }
}

/// Default base seed of every mount's jitter stream (`b"NFSC"` as a word).
const DEFAULT_JITTER_SEED: u64 = 0x4e46_5343;

impl Default for NfsRetryParams {
    fn default() -> NfsRetryParams {
        NfsRetryParams::linux_tcp()
    }
}

/// Server-side parameters.
#[derive(Clone, Debug)]
pub struct NfsServerParams {
    /// Number of `nfsd` daemons (concurrent RPC executions).
    pub daemons: usize,
    /// CPU cost of decoding/dispatching one RPC.
    pub rpc_overhead: Time,
}

impl Default for NfsServerParams {
    fn default() -> Self {
        NfsServerParams {
            daemons: 8,
            rpc_overhead: Time::from_micros(90),
        }
    }
}

/// An NFS server on an I/O node.
pub struct NfsServer {
    /// The cluster node hosting the server.
    pub node: NodeId,
    params: NfsServerParams,
    fs: LocalFs,
    pool: MultiResource,
    /// The lock manager: `lockd` is a single daemon, so byte-range lock
    /// traffic from all clients serializes here — the choke point that
    /// strangles fine-grained MPI-IO on NFS.
    lockd: FifoResource,
    rpcs: u64,
    /// No RPC dispatches before this instant (fault-injected stall window).
    stall_until: Time,
}

impl NfsServer {
    /// Exports `fs` from `node`.
    pub fn new(node: NodeId, params: NfsServerParams, fs: LocalFs) -> NfsServer {
        let pool = MultiResource::new(params.daemons);
        NfsServer {
            node,
            params,
            fs,
            pool,
            lockd: FifoResource::new(),
            rpcs: 0,
            stall_until: Time::ZERO,
        }
    }

    /// The exported filesystem (for meters and direct characterization).
    pub fn fs(&self) -> &LocalFs {
        &self.fs
    }

    /// Mutable access to the exported filesystem.
    pub fn fs_mut(&mut self) -> &mut LocalFs {
        &mut self.fs
    }

    /// RPCs served.
    pub fn rpcs(&self) -> u64 {
        self.rpcs
    }

    fn dispatch(&mut self, arrival: Time) -> Time {
        self.rpcs += 1;
        // Stalled daemons pick nothing up until the window passes.
        let arrival = arrival.max(self.stall_until);
        self.pool.submit(arrival, self.params.rpc_overhead).end
    }

    /// Serves a WRITE RPC; returns when the reply may be sent.
    pub fn serve_write(&mut self, arrival: Time, file: FileId, offset: u64, len: u64) -> Time {
        let t = self.dispatch(arrival);
        self.fs.write(t, file, offset, len)
    }

    /// Serves a READ RPC; returns when the data is ready to send back.
    pub fn serve_read(&mut self, arrival: Time, file: FileId, offset: u64, len: u64) -> Time {
        let t = self.dispatch(arrival);
        self.fs.read(t, file, offset, len)
    }

    /// Serves a metadata RPC (LOOKUP/CREATE/GETATTR/...).
    pub fn serve_meta(&mut self, arrival: Time, file: FileId, create: bool) -> Time {
        let t = self.dispatch(arrival);
        if create {
            self.fs.create(t, file)
        } else {
            self.fs.open(t, file)
        }
    }

    /// Serves an mdtest-class metadata RPC (CREATE / GETATTR / REMOVE /
    /// MKDIR / READDIR) against the exported filesystem.
    pub fn serve_meta_op(
        &mut self,
        arrival: Time,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Time {
        let t = self.dispatch(arrival);
        match verb {
            MetaVerb::Create => self.fs.create(t, target),
            MetaVerb::Stat => self.fs.stat(t, target),
            MetaVerb::Unlink => self.fs.unlink(t, target),
            MetaVerb::Mkdir => self.fs.mkdir(t, dir),
            MetaVerb::Readdir => self.fs.readdir(t, dir),
        }
    }

    /// Serves a COMMIT RPC: makes `file` durable on the server.
    pub fn serve_commit(&mut self, arrival: Time, file: FileId) -> Time {
        let t = self.dispatch(arrival);
        self.fs.fsync(t, file)
    }

    /// Serves a lock/unlock-class RPC. The lock manager (`lockd`) is its
    /// own *single-threaded* daemon with its own queue: it does not contend
    /// on the `nfsd` pool, but concurrent clients serialize on it — with
    /// millions of fine-grained locked operations this is the bottleneck
    /// (the BT-IO *simple* pathology).
    pub fn serve_null(&mut self, arrival: Time) -> Time {
        self.rpcs += 1;
        let arrival = arrival.max(self.stall_until);
        self.lockd.submit(arrival, self.params.rpc_overhead).end
    }

    /// Injects a service stall: no RPC dispatches before `from + duration`
    /// (daemon pause, failover window, deep firmware hiccup). Requests keep
    /// arriving and queue; overlapping stalls extend the window.
    pub fn stall(&mut self, from: Time, duration: Time) {
        self.stall_until = self.stall_until.max(from + duration);
    }

    /// The instant the current stall window ends (`Time::ZERO` if none was
    /// ever injected).
    pub fn stalled_until(&self) -> Time {
        self.stall_until
    }
}

/// Client-side (mount) parameters.
#[derive(Clone, Debug)]
pub struct NfsClientParams {
    /// READ RPC payload size.
    pub rsize: u64,
    /// WRITE RPC payload size.
    pub wsize: u64,
    /// Maximum outstanding RPCs per client (write-behind / readahead window).
    pub max_inflight: usize,
    /// Client page-cache capacity.
    pub cache_capacity: u64,
    /// Dirty bytes beyond which the writer throttles.
    pub dirty_limit: u64,
    /// Dirty level the flusher drains to.
    pub dirty_background: u64,
    /// Client memory-copy bandwidth.
    pub mem_bw: Bandwidth,
    /// Sequential readahead window.
    pub readahead: u64,
    /// Flush dirty data on close (close-to-open consistency).
    pub close_to_open: bool,
    /// Attribute-cache validity window (`acregmin`): a GETATTR within this
    /// window of a previous lookup is answered from the client's attribute
    /// cache without an RPC. Engaged only by the metadata path ([`stat`]);
    /// data operations never consult it.
    ///
    /// [`stat`]: NfsClient::stat
    pub attr_timeo: Time,
    /// RPC timeout/retransmission discipline.
    pub retry: NfsRetryParams,
}

impl NfsClientParams {
    /// A typical Linux NFSv3 mount of the paper's era on a node with `ram`
    /// bytes of memory (rsize/wsize 32 KiB, 16 slot RPC table).
    pub fn linux_default(ram: u64) -> NfsClientParams {
        let cache = ram / 10 * 8;
        NfsClientParams {
            rsize: 32 * 1024,
            wsize: 32 * 1024,
            max_inflight: 16,
            cache_capacity: cache,
            dirty_limit: cache / 5,
            dirty_background: cache / 10,
            mem_bw: Bandwidth::from_mib_per_sec(1600),
            readahead: 512 * 1024,
            close_to_open: true,
            attr_timeo: Time::from_secs(3),
            retry: NfsRetryParams::linux_tcp(),
        }
    }
}

/// One NFS mount on a compute node.
pub struct NfsClient {
    /// The cluster node this mount lives on.
    pub node: NodeId,
    params: NfsClientParams,
    cache: RangeCache,
    inflight: VecDeque<Time>,
    last_read_end: FxHashMap<FileId, u64>,
    /// Attribute cache: per-file instant until which cached attributes are
    /// considered fresh (populated by `stat`/`create`, dropped by `unlink`).
    attr_valid: FxHashMap<FileId, Time>,
    meter: FsMeter,
    /// Jitter stream for retransmission backoff (seeded from the node id,
    /// so every mount has its own deterministic stream).
    rng: SplitMix64,
    retries: u64,
}

impl NfsClient {
    /// Mounts the export on `node`.
    pub fn new(node: NodeId, params: NfsClientParams) -> NfsClient {
        let cache = RangeCache::new(params.cache_capacity);
        let rng = SplitMix64::new(params.retry.jitter_seed ^ node as u64);
        NfsClient {
            node,
            params,
            cache,
            inflight: VecDeque::new(),
            last_read_end: FxHashMap::default(),
            attr_valid: FxHashMap::default(),
            meter: FsMeter::default(),
            rng,
            retries: 0,
        }
    }

    /// Client-observed transfer statistics.
    pub fn meter(&self) -> &FsMeter {
        &self.meter
    }

    /// RPC retransmissions this mount has performed (0 while healthy).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Replaces the mount's timeout/retransmission discipline (remounting
    /// with different `timeo`/`retrans` options). The jitter stream is
    /// reseeded only when `jitter_seed` changes, so remounts that merely
    /// tune `timeo`/`retrans` leave the established deterministic jitter
    /// sequence untouched.
    pub fn set_retry(&mut self, retry: NfsRetryParams) {
        if retry.jitter_seed != self.params.retry.jitter_seed {
            self.rng = SplitMix64::new(retry.jitter_seed ^ self.node as u64);
        }
        self.params.retry = retry;
    }

    /// Diagnostic view of the client page cache: (used, dirty, segments).
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        (self.cache.used(), self.cache.dirty(), self.cache.segments())
    }

    /// Client mount parameters.
    pub fn params(&self) -> &NfsClientParams {
        &self.params
    }

    /// Waits for a window slot if the RPC table is full; returns the
    /// earliest instant a new RPC may be issued at or after `now`.
    fn window_gate(&mut self, now: Time) -> Time {
        while self.inflight.front().is_some_and(|&t| t <= now) {
            self.inflight.pop_front();
        }
        if self.inflight.len() >= self.params.max_inflight {
            let t = self.inflight.pop_front().expect("nonempty");
            t.max(now)
        } else {
            now
        }
    }

    /// Runs one RPC under the mount's timeout/retransmission discipline.
    ///
    /// `send(t)` performs a full round trip issued at `t` (request wire +
    /// server service + reply wire) and returns the reply instant; every
    /// retransmission is a real RPC that burns wire and daemon time. A reply
    /// arriving within the current timeout completes the call (the earliest
    /// reply wins — duplicate replies are discarded by XID matching). Each
    /// timeout scales the next one by `backoff_mult` (doubling by default)
    /// up to `max_timeo` and fires the retransmission at the deadline plus
    /// deterministic jitter; exhausting the budget surfaces a soft-mount
    /// [`NfsError::MajorTimeout`].
    fn retry_rpc<F>(
        &mut self,
        op: &'static str,
        file: FileId,
        first_issue: Time,
        mut send: F,
    ) -> Result<Time, NfsError>
    where
        F: FnMut(Time) -> Time,
    {
        let retry = self.params.retry;
        let attempts = retry.retrans + 1;
        let mut timeout = retry.timeo;
        let mut issue = first_issue;
        let mut best: Option<Time> = None;
        for attempt in 1..=attempts {
            let reply = send(issue);
            let best_reply = best.map_or(reply, |b| b.min(reply));
            best = Some(best_reply);
            let deadline = issue + timeout;
            if best_reply <= deadline {
                return Ok(best_reply);
            }
            if attempt == attempts {
                return Err(NfsError::MajorTimeout {
                    op,
                    file,
                    at: deadline,
                    attempts,
                });
            }
            self.retries += 1;
            simcore::obs::emit(|| simcore::obs::ObsEvent::NfsRetry {
                op,
                at: deadline,
                attempt,
            });
            let jitter = timeout.as_secs_f64() * retry.jitter_frac * self.rng.next_f64();
            issue = deadline + Time::from_secs_f64(jitter);
            timeout = Time::from_nanos(
                timeout
                    .as_nanos()
                    .saturating_mul(retry.backoff_mult.max(1) as u64),
            )
            .min(retry.max_timeo);
        }
        unreachable!("retry loop returns on success or exhaustion");
    }

    /// Issues one WRITE RPC (asynchronously); returns the instant the
    /// client may continue issuing.
    fn rpc_write(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Time, NfsError> {
        let t_issue = self.window_gate(now);
        let node = self.node;
        let reply = self.retry_rpc("WRITE", file, t_issue, |t| {
            let arrive = net.send(t, node, srv.node, len + RPC_HEADER, TrafficClass::Storage);
            let ready = srv.serve_write(arrive, file, offset, len);
            net.send(ready, srv.node, node, RPC_REPLY, TrafficClass::Storage)
        })?;
        self.inflight.push_back(reply);
        Ok(t_issue)
    }

    /// Issues one READ RPC; returns the instant the data is at the client.
    fn rpc_read(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Time, NfsError> {
        let t_issue = self.window_gate(now);
        let node = self.node;
        let reply = self.retry_rpc("READ", file, t_issue, |t| {
            let arrive = net.send(t, node, srv.node, RPC_HEADER, TrafficClass::Storage);
            let ready = srv.serve_read(arrive, file, offset, len);
            net.send(
                ready,
                srv.node,
                node,
                len + RPC_REPLY,
                TrafficClass::Storage,
            )
        })?;
        self.inflight.push_back(reply);
        Ok(reply)
    }

    /// Streams `ranges` to the server as WRITE RPCs; returns the instant
    /// the last RPC was *issued* (write-behind, window-gated).
    fn flush_ranges(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        ranges: &[RangeRef],
    ) -> Result<Time, NfsError> {
        let mut t = now;
        for r in ranges {
            let mut pos = r.start;
            while pos < r.end {
                let take = self.params.wsize.min(r.end - pos);
                t = self.rpc_write(net, srv, t, r.file, pos, take)?;
                pos += take;
            }
            self.cache.mark_clean(r.file, r.start, r.end);
        }
        Ok(t)
    }

    /// Waits for every outstanding RPC; returns the drain instant.
    fn drain_inflight(&mut self, now: Time) -> Time {
        let t = self.inflight.iter().copied().fold(now, |a, b| a.max(b));
        self.inflight.clear();
        t
    }

    /// Creates (or opens) a file over the mount.
    pub fn open(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        create: bool,
    ) -> Result<Time, NfsError> {
        // Close-to-open consistency: revalidate by dropping cached pages of
        // this file so reads observe other clients' writes.
        self.cache.drop_file(file);
        self.last_read_end.remove(&file);
        let node = self.node;
        let reply = self.retry_rpc("META", file, now, |t| {
            let arrive = net.send(t, node, srv.node, RPC_HEADER, TrafficClass::Storage);
            let ready = srv.serve_meta(arrive, file, create);
            net.send(ready, srv.node, node, RPC_REPLY, TrafficClass::Storage)
        })?;
        self.meter.meta_ops += 1;
        Ok(reply)
    }

    /// Writes through the mount; returns when the caller may continue.
    pub fn write(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Time, NfsError> {
        assert!(len > 0, "zero-length write");
        let mut t = now;

        let evicted = self.cache.ensure_room(len.min(self.cache.capacity()));
        if !evicted.is_empty() {
            // Evicted dirty pages must be on the wire before we can reuse
            // their memory; mark_clean is a no-op for detached ranges.
            for r in &evicted {
                let mut pos = r.start;
                while pos < r.end {
                    let take = self.params.wsize.min(r.end - pos);
                    t = self.rpc_write(net, srv, t, r.file, pos, take)?;
                    pos += take;
                }
            }
        }

        t += self.params.mem_bw.time_for(len);
        self.cache.insert(file, offset, offset + len, true);

        if self.cache.dirty() > self.params.dirty_limit {
            let excess = self.cache.dirty() - self.params.dirty_background;
            let ranges = self.cache.dirty_ranges(excess);
            t = self.flush_ranges(net, srv, t, &ranges)?;
        }

        self.meter.writes.record(len, t - now);
        Ok(t)
    }

    /// Reads through the mount; returns when the data is at the caller.
    pub fn read(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Time, NfsError> {
        assert!(len > 0, "zero-length read");
        let end = offset + len;
        let (_hits, mut misses) = self.cache.lookup(file, offset, end);

        let sequential = self.last_read_end.get(&file) == Some(&offset);
        if sequential && self.params.readahead > 0 {
            if let Some(last) = misses.last_mut() {
                if last.end == end {
                    last.end += self.params.readahead;
                }
            }
        }
        self.last_read_end.insert(file, end);

        let mut data_ready = now;
        let miss_list = misses.clone();
        for m in &miss_list {
            let evicted = self.cache.ensure_room(m.len().min(self.cache.capacity()));
            let mut t = now;
            for r in &evicted {
                let mut pos = r.start;
                while pos < r.end {
                    let take = self.params.wsize.min(r.end - pos);
                    t = self.rpc_write(net, srv, t, r.file, pos, take)?;
                    pos += take;
                }
            }
            let mut pos = m.start;
            while pos < m.end {
                let take = self.params.rsize.min(m.end - pos);
                let ready = self.rpc_read(net, srv, t.max(now), m.file, pos, take)?;
                // Only chunks inside the requested range gate completion;
                // readahead beyond `end` is speculative.
                if pos < end {
                    data_ready = data_ready.max(ready);
                }
                pos += take;
            }
            self.cache.insert(m.file, m.start, m.end, false);
        }

        let t = data_ready + self.params.mem_bw.time_for(len);
        self.meter.reads.record(len, t - now);
        Ok(t)
    }

    /// `fsync`: flushes dirty data, waits for the window, COMMITs.
    ///
    /// COMMIT is exempt from the retransmission timer: its reply time is
    /// dominated by legitimate server-side flushing (possibly far beyond
    /// `timeo`), and the Linux client keeps waiting as long as the
    /// connection makes progress rather than re-driving the flush.
    pub fn fsync(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
    ) -> Result<Time, NfsError> {
        let ranges = self.cache.dirty_ranges_of(file);
        let t = self.flush_ranges(net, srv, now, &ranges)?;
        let t = self.drain_inflight(t);
        let arrive = net.send(t, self.node, srv.node, RPC_HEADER, TrafficClass::Storage);
        let ready = srv.serve_commit(arrive, file);
        Ok(net.send(ready, srv.node, self.node, RPC_REPLY, TrafficClass::Storage))
    }

    /// The byte-range-lock + attribute-revalidation round trips ROMIO
    /// performs around every MPI-IO data operation on NFS (`noac` mounts
    /// with `fcntl` locking). Two sequential small RPCs.
    ///
    /// Lock manager traffic travels on its own connection (NLM/lockd) and
    /// its frames are tiny, so switch fair queuing keeps it from waiting
    /// behind other hosts' bulk transfers: the wire cost is plain
    /// propagation+stack latency, while the *server dispatch* still
    /// contends on the daemon pool (the real choke point at scale).
    pub fn lock_roundtrips(&mut self, net: &mut Network, srv: &mut NfsServer, now: Time) -> Time {
        let p = net.fabric(TrafficClass::Storage).params();
        let hop = p.per_msg_overhead + p.link.latency;
        let mut t = self.window_gate(now);
        for _ in 0..2 {
            let arrive = t + hop;
            let ready = srv.serve_null(arrive);
            t = ready + hop;
        }
        t
    }

    /// Synchronous write-through — the discipline ROMIO imposes for MPI-IO
    /// on NFS (no write-behind; data must be visible at the server when the
    /// call returns): the data is shipped as `wsize` RPCs and the call
    /// returns only when every RPC has been answered. Like a write-through
    /// cache, the written range is left *clean* in the client page cache,
    /// so the process's own re-reads can hit locally — the buffer/cache
    /// effect behind the paper's >100% read-usage cells.
    pub fn write_direct(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Time, NfsError> {
        assert!(len > 0, "zero-length write");
        let mut t = now;
        // Make room for the write-through fill; dirty evictions (possible
        // when a cached mount shares this client) must be on the wire.
        let evicted = self.cache.ensure_room(len.min(self.cache.capacity()));
        for r in &evicted {
            let mut pos = r.start;
            while pos < r.end {
                let take = self.params.wsize.min(r.end - pos);
                t = self.rpc_write(net, srv, t, r.file, pos, take)?;
                pos += take;
            }
        }
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let take = self.params.wsize.min(end - pos);
            t = self.rpc_write(net, srv, t, file, pos, take)?;
            pos += take;
        }
        let t = self.drain_inflight(t);
        self.cache.insert(file, offset, end, false);
        self.meter.writes.record(len, t - now);
        Ok(t)
    }

    /// Flushes every dirty page and drops the whole client cache (used
    /// between characterization runs, like `drop_caches` on a real client).
    pub fn drop_caches(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
    ) -> Result<Time, NfsError> {
        let ranges = self.cache.dirty_ranges(u64::MAX);
        let t = self.flush_ranges(net, srv, now, &ranges)?;
        let t = self.drain_inflight(t);
        let evicted = self.cache.ensure_room(self.cache.capacity());
        debug_assert!(evicted.is_empty(), "flush left dirty pages behind");
        self.last_read_end.clear();
        Ok(t)
    }

    /// Closes the file; with close-to-open semantics this flushes first.
    pub fn close(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
    ) -> Result<Time, NfsError> {
        self.meter.meta_ops += 1;
        if self.params.close_to_open {
            self.fsync(net, srv, now, file)
        } else {
            let node = self.node;
            self.retry_rpc("META", file, now, |t| {
                let arrive = net.send(t, node, srv.node, RPC_HEADER, TrafficClass::Storage);
                let ready = srv.serve_meta(arrive, file, false);
                net.send(ready, srv.node, node, RPC_REPLY, TrafficClass::Storage)
            })
        }
    }

    /// Runs one mdtest-class metadata verb over the mount, under the same
    /// timeout/retransmission discipline as the data path.
    ///
    /// `Stat` consults the attribute cache first: within `attr_timeo` of a
    /// previous lookup the call is answered locally, with no RPC — the
    /// `acregmin` behaviour that makes NFS stat-heavy phases cache-bound
    /// rather than wire-bound. `Create` and `Stat` refresh the cached
    /// attributes; `Unlink` drops them along with any cached pages.
    pub fn meta_verb(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Result<Time, NfsError> {
        if verb == MetaVerb::Stat
            && self
                .attr_valid
                .get(&target)
                .is_some_and(|&until| now < until)
        {
            self.meter.meta_ops += 1;
            return Ok(now);
        }
        let op = match verb {
            MetaVerb::Create => "CREATE",
            MetaVerb::Stat => "GETATTR",
            MetaVerb::Unlink => "REMOVE",
            MetaVerb::Mkdir => "MKDIR",
            MetaVerb::Readdir => "READDIR",
        };
        let node = self.node;
        let reply = self.retry_rpc(op, target, now, |t| {
            let arrive = net.send(t, node, srv.node, RPC_HEADER, TrafficClass::Storage);
            let ready = srv.serve_meta_op(arrive, verb, dir, target);
            net.send(ready, srv.node, node, RPC_REPLY, TrafficClass::Storage)
        })?;
        match verb {
            MetaVerb::Create | MetaVerb::Stat => {
                self.attr_valid
                    .insert(target, reply + self.params.attr_timeo);
            }
            MetaVerb::Unlink => {
                self.attr_valid.remove(&target);
                self.cache.drop_file(target);
                self.last_read_end.remove(&target);
            }
            MetaVerb::Mkdir | MetaVerb::Readdir => {}
        }
        self.meter.meta_ops += 1;
        Ok(reply)
    }

    /// Stats `file` (GETATTR through the attribute cache).
    pub fn stat(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
    ) -> Result<Time, NfsError> {
        self.meta_verb(net, srv, now, MetaVerb::Stat, file, file)
    }
}

impl MetaOps for NfsClient {
    type Ctx<'a> = (&'a mut Network, &'a mut NfsServer);
    type Error = NfsError;

    fn meta(
        &mut self,
        (net, srv): Self::Ctx<'_>,
        now: Time,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Result<Time, NfsError> {
        self.meta_verb(net, srv, now, verb, dir, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFsParams;
    use netsim::FabricParams;
    use simcore::{GIB, MIB};
    use storage::{Disk, DiskParams, Jbod};

    const F: FileId = FileId(1);

    struct Rig {
        net: Network,
        srv: NfsServer,
        client: NfsClient,
    }

    fn rig() -> Rig {
        // Node 0: client; node 1: server.
        let net = Network::split(2, FabricParams::gigabit_ethernet());
        let disk = Disk::new(DiskParams::sata_7200(230, 72), 42);
        let fs = LocalFs::new(LocalFsParams::ext4(2 * GIB), Box::new(Jbod::new(disk)));
        let srv = NfsServer::new(1, NfsServerParams::default(), fs);
        let client = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
        Rig { net, srv, client }
    }

    #[test]
    fn open_write_close_makes_data_durable_on_server() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        let t = r
            .client
            .write(&mut r.net, &mut r.srv, t, F, 0, 8 * MIB)
            .unwrap();
        let t = r.client.close(&mut r.net, &mut r.srv, t, F).unwrap();
        assert!(t > Time::ZERO);
        assert_eq!(r.srv.fs().file_size(F), 8 * MIB);
        assert_eq!(r.srv.fs().dirty_bytes(), 0, "close commits on the server");
    }

    #[test]
    fn small_cached_writes_are_fast_until_flush() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        let start = t;
        let mut now = t;
        for i in 0..64u64 {
            now = r
                .client
                .write(&mut r.net, &mut r.srv, now, F, i * MIB, MIB)
                .unwrap();
        }
        let rate = Bandwidth::measured(64 * MIB, now - start).as_mib_per_sec();
        assert!(rate > 400.0, "client-cached writes at {rate} MiB/s");
    }

    #[test]
    fn sustained_write_is_bounded_by_wire_and_disk() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        let start = t;
        let mut now = t;
        let total = 4 * GIB; // 2× client RAM
        let mut off = 0;
        while off < total {
            now = r
                .client
                .write(&mut r.net, &mut r.srv, now, F, off, 4 * MIB)
                .unwrap();
            off += 4 * MIB;
        }
        now = r.client.fsync(&mut r.net, &mut r.srv, now, F).unwrap();
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        // GigE wire ≈ 112 MiB/s; server disk ≈ 68 MiB/s → disk bound.
        assert!(rate < 112.0, "NFS write rate {rate} cannot beat the wire");
        assert!(rate > 35.0, "NFS write rate {rate} collapsed");
    }

    #[test]
    fn cold_sequential_read_streams_near_bottleneck() {
        let mut r = rig();
        r.srv.fs_mut().preallocate(F, 2 * GIB);
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, false)
            .unwrap();
        let mut now = t;
        let start = t;
        let total = GIB;
        let mut off = 0;
        while off < total {
            now = r
                .client
                .read(&mut r.net, &mut r.srv, now, F, off, MIB)
                .unwrap();
            off += MIB;
        }
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        // Bounded by server disk (~72 MiB/s); pipelining must keep us near it.
        assert!(rate > 35.0 && rate < 112.0, "NFS cold read at {rate} MiB/s");
    }

    #[test]
    fn client_cache_serves_rereads_at_memory_speed() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        let mut now = r
            .client
            .write(&mut r.net, &mut r.srv, t, F, 0, 64 * MIB)
            .unwrap();
        let start = now;
        now = r
            .client
            .read(&mut r.net, &mut r.srv, now, F, 0, 64 * MIB)
            .unwrap();
        let rate = Bandwidth::measured(64 * MIB, now - start).as_mib_per_sec();
        assert!(rate > 500.0, "client cache re-read at {rate} MiB/s");
    }

    #[test]
    fn reopen_invalidates_client_cache() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        let t = r
            .client
            .write(&mut r.net, &mut r.srv, t, F, 0, 8 * MIB)
            .unwrap();
        let t = r.client.close(&mut r.net, &mut r.srv, t, F).unwrap();
        let t = r.client.open(&mut r.net, &mut r.srv, t, F, false).unwrap();
        let start = t;
        let t_end = r
            .client
            .read(&mut r.net, &mut r.srv, t, F, 0, 8 * MIB)
            .unwrap();
        let rate = Bandwidth::measured(8 * MIB, t_end - start).as_mib_per_sec();
        // Must traverse the network again (≤ wire), not the client cache.
        assert!(
            rate < 150.0,
            "post-reopen read at {rate} MiB/s bypassed CTO"
        );
    }

    #[test]
    fn two_clients_share_one_file_through_server() {
        let mut net = Network::split(3, FabricParams::gigabit_ethernet());
        let disk = Disk::new(DiskParams::sata_7200(230, 72), 42);
        let fs = LocalFs::new(LocalFsParams::ext4(2 * GIB), Box::new(Jbod::new(disk)));
        let mut srv = NfsServer::new(2, NfsServerParams::default(), fs);
        let mut c0 = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
        let mut c1 = NfsClient::new(1, NfsClientParams::linux_default(2 * GIB));

        let t0 = c0.open(&mut net, &mut srv, Time::ZERO, F, true).unwrap();
        let t1 = c1.open(&mut net, &mut srv, Time::ZERO, F, false).unwrap();
        let t0 = c0.write(&mut net, &mut srv, t0, F, 0, 4 * MIB).unwrap();
        let t1 = c1
            .write(&mut net, &mut srv, t1, F, 4 * MIB, 4 * MIB)
            .unwrap();
        let t0 = c0.close(&mut net, &mut srv, t0, F).unwrap();
        let t1 = c1.close(&mut net, &mut srv, t1, F).unwrap();
        assert_eq!(srv.fs().file_size(F), 8 * MIB);

        // Client 0 re-opens and reads client 1's half through the server.
        let t = c0.open(&mut net, &mut srv, t0.max(t1), F, false).unwrap();
        let t_end = c0.read(&mut net, &mut srv, t, F, 4 * MIB, 4 * MIB).unwrap();
        assert!(t_end > t);
    }

    #[test]
    fn rpc_window_limits_inflight() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        // Force flushing by writing beyond the dirty limit in one burst.
        let mut now = t;
        let total = r.client.params().dirty_limit + 64 * MIB;
        let mut off = 0;
        while off < total {
            now = r
                .client
                .write(&mut r.net, &mut r.srv, now, F, off, 4 * MIB)
                .unwrap();
            off += 4 * MIB;
        }
        assert!(
            r.client.inflight.len() <= r.client.params().max_inflight,
            "window exceeded: {}",
            r.client.inflight.len()
        );
    }

    #[test]
    fn write_direct_is_synchronous_and_fills_cache() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        let start = t;
        let t = r
            .client
            .write_direct(&mut r.net, &mut r.srv, t, F, 0, 64 * MIB)
            .unwrap();
        // Synchronous: bounded by the wire (112 MiB/s), no write-behind.
        let rate = Bandwidth::measured(64 * MIB, t - start).as_mib_per_sec();
        assert!(rate < 112.0, "direct write at {rate} beat the wire");
        assert!(rate > 40.0, "direct write at {rate} collapsed");
        // The server saw everything already (no dirty client state).
        assert_eq!(r.srv.fs().file_size(F), 64 * MIB);
        let (used, dirty, _) = r.client.cache_stats();
        assert_eq!(used, 64 * MIB, "write-through fill");
        assert_eq!(dirty, 0, "write-through leaves nothing dirty");
        // Re-read hits the client cache at memory speed.
        let t2 = r
            .client
            .read(&mut r.net, &mut r.srv, t, F, 0, 64 * MIB)
            .unwrap();
        let reread = Bandwidth::measured(64 * MIB, t2 - t).as_mib_per_sec();
        assert!(reread > 500.0, "re-read after write-through at {reread}");
    }

    #[test]
    fn lock_roundtrips_cost_is_small_and_serializes_on_lockd() {
        let mut r = rig();
        let t1 = r.client.lock_roundtrips(&mut r.net, &mut r.srv, Time::ZERO);
        // Two round trips of ~(100us + 90us + 100us).
        assert!(t1 > Time::from_micros(400) && t1 < Time::from_millis(2));
        // A second client's locks queue behind the first on lockd.
        let mut c2 = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
        let t2 = c2.lock_roundtrips(&mut r.net, &mut r.srv, Time::ZERO);
        assert!(t2 > t1, "lockd must serialize concurrent lock traffic");
    }

    #[test]
    fn healthy_runs_never_retransmit() {
        let mut r = rig();
        let t = r
            .client
            .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
            .unwrap();
        let mut now = t;
        for i in 0..64u64 {
            now = r
                .client
                .write(&mut r.net, &mut r.srv, now, F, i * MIB, MIB)
                .unwrap();
        }
        r.client.fsync(&mut r.net, &mut r.srv, now, F).unwrap();
        assert_eq!(r.client.retries(), 0, "healthy path must not retransmit");
    }

    #[test]
    fn stalled_server_triggers_retransmissions_then_recovers() {
        let mut r = rig();
        r.client.params.retry = NfsRetryParams::impatient(Time::from_millis(50), 5);
        r.srv.fs_mut().preallocate(F, 64 * MIB);
        let stall = Time::from_millis(400);
        r.srv.stall(Time::ZERO, stall);
        let t = r
            .client
            .read(&mut r.net, &mut r.srv, Time::ZERO, F, 0, 32 * 1024)
            .unwrap();
        assert!(t >= stall, "reply cannot precede the stall window end");
        assert!(
            r.client.retries() > 0,
            "a 400ms stall must beat a 50ms timeo"
        );
        // The mount keeps working after the window passes, without retries.
        let before = r.client.retries();
        let t2 = r
            .client
            .read(&mut r.net, &mut r.srv, t, F, MIB, 32 * 1024)
            .unwrap();
        assert!(t2 > t);
        assert_eq!(r.client.retries(), before, "post-stall RPCs are clean");
    }

    #[test]
    fn backoff_doubles_deterministically_until_major_timeout() {
        let trace = || {
            let mut c = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
            c.params.retry = NfsRetryParams::impatient(Time::from_millis(10), 4);
            let mut issues = Vec::new();
            let err = c
                .retry_rpc("READ", F, Time::ZERO, |t| {
                    issues.push(t);
                    Time::MAX // the reply never makes any deadline
                })
                .unwrap_err();
            (issues, err)
        };
        let (issues, err) = trace();
        assert_eq!(issues.len(), 5, "first send plus four retransmissions");
        // Gaps double (10, 20, 40, 80 ms) within the 10% jitter allowance.
        for (k, pair) in issues.windows(2).enumerate() {
            let gap = (pair[1] - pair[0]).as_secs_f64();
            let timeo = 0.010 * (1u64 << k) as f64;
            assert!(
                gap >= timeo && gap <= timeo * 1.1,
                "gap {k} = {gap}s outside [{timeo}, {}]",
                timeo * 1.1
            );
        }
        match err {
            NfsError::MajorTimeout { op, attempts, .. } => {
                assert_eq!(op, "READ");
                assert_eq!(attempts, 5);
            }
        }
        // Same seed, same trace.
        assert_eq!(trace().0, issues);
    }

    #[test]
    fn backoff_mult_and_jitter_seed_are_configurable() {
        let trace = |retry: NfsRetryParams| {
            let mut params = NfsClientParams::linux_default(2 * GIB);
            params.retry = retry;
            let mut c = NfsClient::new(0, params);
            let mut issues = Vec::new();
            let _ = c.retry_rpc("READ", F, Time::ZERO, |t| {
                issues.push(t);
                Time::MAX
            });
            issues
        };
        // A tripling discipline: gaps grow 10, 30, 90, 270 ms within the
        // 10% jitter allowance.
        let mut tripling = NfsRetryParams::impatient(Time::from_millis(10), 4);
        tripling.backoff_mult = 3;
        let issues = trace(tripling);
        assert_eq!(issues.len(), 5);
        for (k, pair) in issues.windows(2).enumerate() {
            let gap = (pair[1] - pair[0]).as_secs_f64();
            let timeo = 0.010 * 3u64.pow(k as u32) as f64;
            assert!(
                gap >= timeo && gap <= timeo * 1.1,
                "gap {k} = {gap}s outside [{timeo}, {}]",
                timeo * 1.1
            );
        }
        assert_eq!(trace(tripling), issues, "same params, same trace");

        // A different jitter seed draws a different (still deterministic)
        // jitter sequence under the same timeout schedule.
        let mut reseeded = tripling;
        reseeded.jitter_seed ^= 0xDEAD_BEEF;
        let other = trace(reseeded);
        assert_ne!(other, issues, "distinct seeds must not share a trace");
        assert_eq!(trace(reseeded), other);

        // set_retry with a changed seed reseeds the stream, matching a
        // mount constructed with that seed from the start.
        let mut c = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
        c.set_retry(reseeded);
        let mut issues_via_set = Vec::new();
        let _ = c.retry_rpc("READ", F, Time::ZERO, |t| {
            issues_via_set.push(t);
            Time::MAX
        });
        assert_eq!(issues_via_set, other);
    }

    #[test]
    fn unreachable_server_surfaces_major_timeout_error() {
        let mut r = rig();
        r.client.params.retry = NfsRetryParams::impatient(Time::from_millis(10), 2);
        r.srv.fs_mut().preallocate(F, 64 * MIB);
        r.srv.stall(Time::ZERO, Time::from_secs(10));
        let err = r
            .client
            .read(&mut r.net, &mut r.srv, Time::ZERO, F, 0, 32 * 1024)
            .unwrap_err();
        let NfsError::MajorTimeout {
            op,
            file,
            at,
            attempts,
        } = err;
        assert_eq!(op, "READ");
        assert_eq!(file, F);
        assert_eq!(attempts, 3);
        // The client gives up long before the stall clears (soft mount).
        assert!(at < Time::from_secs(1), "gave up at {:?}", at);
        assert_eq!(err.at(), at);
    }

    #[test]
    fn stall_applies_backpressure_through_the_rpc_window() {
        let mut r = rig();
        r.srv.fs_mut().preallocate(F, GIB);
        let stall = Time::from_secs(2);
        r.srv.stall(Time::ZERO, stall);
        // Synchronous write-through must wait out the stall: with the
        // default patient (Linux TCP) discipline nothing retransmits, the
        // window just fills and blocks until the stalled replies drain.
        let t = r
            .client
            .write_direct(&mut r.net, &mut r.srv, Time::ZERO, F, 0, 4 * MIB)
            .unwrap();
        assert!(t > stall, "completion {t:?} must absorb the stall window");
        assert_eq!(r.client.retries(), 0, "60s timeo outlasts a 2s stall");
    }

    #[test]
    fn stat_within_attr_window_skips_the_rpc() {
        let mut r = rig();
        let dir = FileId(30);
        let t = r
            .client
            .meta_verb(&mut r.net, &mut r.srv, Time::ZERO, MetaVerb::Create, dir, F)
            .unwrap();
        let rpcs_after_create = r.srv.rpcs();
        // First stat is inside the window populated by CREATE: no RPC, no time.
        let t2 = r.client.stat(&mut r.net, &mut r.srv, t, F).unwrap();
        assert_eq!(t2, t, "attribute-cache hit must be free");
        assert_eq!(r.srv.rpcs(), rpcs_after_create, "no RPC on a hit");
        // Past the window the client revalidates with a real GETATTR.
        let later = t + r.client.params().attr_timeo + Time::from_micros(1);
        let t3 = r.client.stat(&mut r.net, &mut r.srv, later, F).unwrap();
        assert!(t3 > later, "expired attributes force a GETATTR round trip");
        assert_eq!(r.srv.rpcs(), rpcs_after_create + 1);
    }

    #[test]
    fn unlink_invalidates_attributes_and_pages() {
        let mut r = rig();
        let dir = FileId(30);
        let t = r
            .client
            .meta_verb(&mut r.net, &mut r.srv, Time::ZERO, MetaVerb::Create, dir, F)
            .unwrap();
        let t = r
            .client
            .meta_verb(&mut r.net, &mut r.srv, t, MetaVerb::Unlink, dir, F)
            .unwrap();
        let rpcs = r.srv.rpcs();
        // Attributes were dropped: the next stat must go to the server.
        let t2 = r.client.stat(&mut r.net, &mut r.srv, t, F).unwrap();
        assert!(t2 > t);
        assert_eq!(r.srv.rpcs(), rpcs + 1);
        assert_eq!(r.srv.fs().file_size(F), 0, "server dropped the file");
    }

    #[test]
    fn mdtest_cycle_is_deterministic_and_counts_meta_ops() {
        let run = || {
            let mut r = rig();
            let dir = FileId(30);
            let mut t = r
                .client
                .meta_verb(
                    &mut r.net,
                    &mut r.srv,
                    Time::ZERO,
                    MetaVerb::Mkdir,
                    dir,
                    dir,
                )
                .unwrap();
            for i in 0..16u64 {
                let f = FileId(100 + i);
                t = r
                    .client
                    .meta_verb(&mut r.net, &mut r.srv, t, MetaVerb::Create, dir, f)
                    .unwrap();
            }
            for i in 0..16u64 {
                let f = FileId(100 + i);
                t = r.client.stat(&mut r.net, &mut r.srv, t, f).unwrap();
            }
            for i in 0..16u64 {
                let f = FileId(100 + i);
                t = r
                    .client
                    .meta_verb(&mut r.net, &mut r.srv, t, MetaVerb::Unlink, dir, f)
                    .unwrap();
            }
            t = r
                .client
                .meta_verb(&mut r.net, &mut r.srv, t, MetaVerb::Readdir, dir, dir)
                .unwrap();
            (t, r.client.meter().meta_ops, r.client.retries())
        };
        let (t, meta_ops, retries) = run();
        assert!(t > Time::ZERO);
        assert_eq!(meta_ops, 1 + 16 * 3 + 1);
        assert_eq!(retries, 0, "healthy metadata path never retransmits");
        assert_eq!(run(), (t, meta_ops, retries));
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut r = rig();
            let t = r
                .client
                .open(&mut r.net, &mut r.srv, Time::ZERO, F, true)
                .unwrap();
            let mut now = t;
            for i in 0..256u64 {
                now = r
                    .client
                    .write(&mut r.net, &mut r.srv, now, F, i * MIB, MIB)
                    .unwrap();
            }
            let now = r.client.fsync(&mut r.net, &mut r.srv, now, F).unwrap();
            let mut t = r
                .client
                .open(&mut r.net, &mut r.srv, now, F, false)
                .unwrap();
            for i in 0..256u64 {
                t = r
                    .client
                    .read(&mut r.net, &mut r.srv, t, F, i * MIB, MIB)
                    .unwrap();
            }
            t
        };
        assert_eq!(run(), run());
    }
}
