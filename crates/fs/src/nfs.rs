//! An NFSv3-like network filesystem.
//!
//! * [`NfsServer`] — an I/O node: a daemon pool (`nfsd` threads) serving
//!   RPCs on top of a [`LocalFs`] (which supplies the server page cache and
//!   the RAID/JBOD device level below it).
//! * [`NfsClient`] — one mount on a compute node: a client page cache with
//!   write-behind (WRITE RPCs of `wsize` bytes, a bounded in-flight window
//!   providing back-pressure), pipelined READ RPCs of `rsize` bytes with
//!   readahead, close-to-open consistency (flush on close, cache
//!   invalidation on open) and COMMIT on fsync.
//!
//! Client methods borrow the [`Network`] and the server explicitly — the
//! cluster owns both and the simulation issues operations in global time
//! order, which keeps every underlying timeline exact.

use crate::file::FileId;
use crate::local::{FsMeter, LocalFs};
use crate::range_cache::{RangeCache, RangeRef};
use netsim::{Network, NodeId, TrafficClass};
use simcore::{Bandwidth, FifoResource, MultiResource, Time};
use std::collections::{HashMap, VecDeque};

/// NFS RPC header/trailer size on the wire.
const RPC_HEADER: u64 = 136;
/// Size of a reply that carries no data payload.
const RPC_REPLY: u64 = 112;

/// Server-side parameters.
#[derive(Clone, Debug)]
pub struct NfsServerParams {
    /// Number of `nfsd` daemons (concurrent RPC executions).
    pub daemons: usize,
    /// CPU cost of decoding/dispatching one RPC.
    pub rpc_overhead: Time,
}

impl Default for NfsServerParams {
    fn default() -> Self {
        NfsServerParams {
            daemons: 8,
            rpc_overhead: Time::from_micros(90),
        }
    }
}

/// An NFS server on an I/O node.
pub struct NfsServer {
    /// The cluster node hosting the server.
    pub node: NodeId,
    params: NfsServerParams,
    fs: LocalFs,
    pool: MultiResource,
    /// The lock manager: `lockd` is a single daemon, so byte-range lock
    /// traffic from all clients serializes here — the choke point that
    /// strangles fine-grained MPI-IO on NFS.
    lockd: FifoResource,
    rpcs: u64,
}

impl NfsServer {
    /// Exports `fs` from `node`.
    pub fn new(node: NodeId, params: NfsServerParams, fs: LocalFs) -> NfsServer {
        let pool = MultiResource::new(params.daemons);
        NfsServer {
            node,
            params,
            fs,
            pool,
            lockd: FifoResource::new(),
            rpcs: 0,
        }
    }

    /// The exported filesystem (for meters and direct characterization).
    pub fn fs(&self) -> &LocalFs {
        &self.fs
    }

    /// Mutable access to the exported filesystem.
    pub fn fs_mut(&mut self) -> &mut LocalFs {
        &mut self.fs
    }

    /// RPCs served.
    pub fn rpcs(&self) -> u64 {
        self.rpcs
    }

    fn dispatch(&mut self, arrival: Time) -> Time {
        self.rpcs += 1;
        self.pool.submit(arrival, self.params.rpc_overhead).end
    }

    /// Serves a WRITE RPC; returns when the reply may be sent.
    pub fn serve_write(&mut self, arrival: Time, file: FileId, offset: u64, len: u64) -> Time {
        let t = self.dispatch(arrival);
        self.fs.write(t, file, offset, len)
    }

    /// Serves a READ RPC; returns when the data is ready to send back.
    pub fn serve_read(&mut self, arrival: Time, file: FileId, offset: u64, len: u64) -> Time {
        let t = self.dispatch(arrival);
        self.fs.read(t, file, offset, len)
    }

    /// Serves a metadata RPC (LOOKUP/CREATE/GETATTR/...).
    pub fn serve_meta(&mut self, arrival: Time, file: FileId, create: bool) -> Time {
        let t = self.dispatch(arrival);
        if create {
            self.fs.create(t, file)
        } else {
            self.fs.open(t, file)
        }
    }

    /// Serves a COMMIT RPC: makes `file` durable on the server.
    pub fn serve_commit(&mut self, arrival: Time, file: FileId) -> Time {
        let t = self.dispatch(arrival);
        self.fs.fsync(t, file)
    }

    /// Serves a lock/unlock-class RPC. The lock manager (`lockd`) is its
    /// own *single-threaded* daemon with its own queue: it does not contend
    /// on the `nfsd` pool, but concurrent clients serialize on it — with
    /// millions of fine-grained locked operations this is the bottleneck
    /// (the BT-IO *simple* pathology).
    pub fn serve_null(&mut self, arrival: Time) -> Time {
        self.rpcs += 1;
        self.lockd.submit(arrival, self.params.rpc_overhead).end
    }
}

/// Client-side (mount) parameters.
#[derive(Clone, Debug)]
pub struct NfsClientParams {
    /// READ RPC payload size.
    pub rsize: u64,
    /// WRITE RPC payload size.
    pub wsize: u64,
    /// Maximum outstanding RPCs per client (write-behind / readahead window).
    pub max_inflight: usize,
    /// Client page-cache capacity.
    pub cache_capacity: u64,
    /// Dirty bytes beyond which the writer throttles.
    pub dirty_limit: u64,
    /// Dirty level the flusher drains to.
    pub dirty_background: u64,
    /// Client memory-copy bandwidth.
    pub mem_bw: Bandwidth,
    /// Sequential readahead window.
    pub readahead: u64,
    /// Flush dirty data on close (close-to-open consistency).
    pub close_to_open: bool,
}

impl NfsClientParams {
    /// A typical Linux NFSv3 mount of the paper's era on a node with `ram`
    /// bytes of memory (rsize/wsize 32 KiB, 16 slot RPC table).
    pub fn linux_default(ram: u64) -> NfsClientParams {
        let cache = ram / 10 * 8;
        NfsClientParams {
            rsize: 32 * 1024,
            wsize: 32 * 1024,
            max_inflight: 16,
            cache_capacity: cache,
            dirty_limit: cache / 5,
            dirty_background: cache / 10,
            mem_bw: Bandwidth::from_mib_per_sec(1600),
            readahead: 512 * 1024,
            close_to_open: true,
        }
    }
}

/// One NFS mount on a compute node.
pub struct NfsClient {
    /// The cluster node this mount lives on.
    pub node: NodeId,
    params: NfsClientParams,
    cache: RangeCache,
    inflight: VecDeque<Time>,
    last_read_end: HashMap<FileId, u64>,
    meter: FsMeter,
}

impl NfsClient {
    /// Mounts the export on `node`.
    pub fn new(node: NodeId, params: NfsClientParams) -> NfsClient {
        let cache = RangeCache::new(params.cache_capacity);
        NfsClient {
            node,
            params,
            cache,
            inflight: VecDeque::new(),
            last_read_end: HashMap::new(),
            meter: FsMeter::default(),
        }
    }

    /// Client-observed transfer statistics.
    pub fn meter(&self) -> &FsMeter {
        &self.meter
    }

    /// Diagnostic view of the client page cache: (used, dirty, segments).
    pub fn cache_stats(&self) -> (u64, u64, usize) {
        (self.cache.used(), self.cache.dirty(), self.cache.segments())
    }

    /// Client mount parameters.
    pub fn params(&self) -> &NfsClientParams {
        &self.params
    }

    /// Waits for a window slot if the RPC table is full; returns the
    /// earliest instant a new RPC may be issued at or after `now`.
    fn window_gate(&mut self, now: Time) -> Time {
        while self.inflight.front().is_some_and(|&t| t <= now) {
            self.inflight.pop_front();
        }
        if self.inflight.len() >= self.params.max_inflight {
            let t = self.inflight.pop_front().expect("nonempty");
            t.max(now)
        } else {
            now
        }
    }

    /// Issues one WRITE RPC (asynchronously); returns the instant the
    /// client may continue issuing.
    fn rpc_write(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        let t_issue = self.window_gate(now);
        let arrive = net.send(
            t_issue,
            self.node,
            srv.node,
            len + RPC_HEADER,
            TrafficClass::Storage,
        );
        let ready = srv.serve_write(arrive, file, offset, len);
        let reply = net.send(ready, srv.node, self.node, RPC_REPLY, TrafficClass::Storage);
        self.inflight.push_back(reply);
        t_issue
    }

    /// Issues one READ RPC; returns the instant the data is at the client.
    fn rpc_read(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        let t_issue = self.window_gate(now);
        let arrive = net.send(t_issue, self.node, srv.node, RPC_HEADER, TrafficClass::Storage);
        let ready = srv.serve_read(arrive, file, offset, len);
        let reply = net.send(
            ready,
            srv.node,
            self.node,
            len + RPC_REPLY,
            TrafficClass::Storage,
        );
        self.inflight.push_back(reply);
        reply
    }

    /// Streams `ranges` to the server as WRITE RPCs; returns the instant
    /// the last RPC was *issued* (write-behind, window-gated).
    fn flush_ranges(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        ranges: &[RangeRef],
    ) -> Time {
        let mut t = now;
        for r in ranges {
            let mut pos = r.start;
            while pos < r.end {
                let take = self.params.wsize.min(r.end - pos);
                t = self.rpc_write(net, srv, t, r.file, pos, take);
                pos += take;
            }
            self.cache.mark_clean(r.file, r.start, r.end);
        }
        t
    }

    /// Waits for every outstanding RPC; returns the drain instant.
    fn drain_inflight(&mut self, now: Time) -> Time {
        let t = self
            .inflight
            .iter()
            .copied()
            .fold(now, |a, b| a.max(b));
        self.inflight.clear();
        t
    }

    /// Creates (or opens) a file over the mount.
    pub fn open(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        create: bool,
    ) -> Time {
        // Close-to-open consistency: revalidate by dropping cached pages of
        // this file so reads observe other clients' writes.
        self.cache.drop_file(file);
        self.last_read_end.remove(&file);
        let arrive = net.send(now, self.node, srv.node, RPC_HEADER, TrafficClass::Storage);
        let ready = srv.serve_meta(arrive, file, create);
        let reply = net.send(ready, srv.node, self.node, RPC_REPLY, TrafficClass::Storage);
        self.meter.meta_ops += 1;
        reply
    }

    /// Writes through the mount; returns when the caller may continue.
    pub fn write(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        assert!(len > 0, "zero-length write");
        let mut t = now;

        let evicted = self.cache.ensure_room(len.min(self.cache.capacity()));
        if !evicted.is_empty() {
            // Evicted dirty pages must be on the wire before we can reuse
            // their memory; mark_clean is a no-op for detached ranges.
            for r in &evicted {
                let mut pos = r.start;
                while pos < r.end {
                    let take = self.params.wsize.min(r.end - pos);
                    t = self.rpc_write(net, srv, t, r.file, pos, take);
                    pos += take;
                }
            }
        }

        t += self.params.mem_bw.time_for(len);
        self.cache.insert(file, offset, offset + len, true);

        if self.cache.dirty() > self.params.dirty_limit {
            let excess = self.cache.dirty() - self.params.dirty_background;
            let ranges = self.cache.dirty_ranges(excess);
            t = self.flush_ranges(net, srv, t, &ranges);
        }

        self.meter.writes.record(len, t - now);
        t
    }

    /// Reads through the mount; returns when the data is at the caller.
    pub fn read(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        assert!(len > 0, "zero-length read");
        let end = offset + len;
        let (_hits, mut misses) = self.cache.lookup(file, offset, end);

        let sequential = self.last_read_end.get(&file) == Some(&offset);
        if sequential && self.params.readahead > 0 {
            if let Some(last) = misses.last_mut() {
                if last.end == end {
                    last.end += self.params.readahead;
                }
            }
        }
        self.last_read_end.insert(file, end);

        let mut data_ready = now;
        let miss_list = misses.clone();
        for m in &miss_list {
            let evicted = self.cache.ensure_room(m.len().min(self.cache.capacity()));
            let mut t = now;
            for r in &evicted {
                let mut pos = r.start;
                while pos < r.end {
                    let take = self.params.wsize.min(r.end - pos);
                    t = self.rpc_write(net, srv, t, r.file, pos, take);
                    pos += take;
                }
            }
            let mut pos = m.start;
            while pos < m.end {
                let take = self.params.rsize.min(m.end - pos);
                let ready = self.rpc_read(net, srv, t.max(now), m.file, pos, take);
                // Only chunks inside the requested range gate completion;
                // readahead beyond `end` is speculative.
                if pos < end {
                    data_ready = data_ready.max(ready);
                }
                pos += take;
            }
            self.cache.insert(m.file, m.start, m.end, false);
        }

        let t = data_ready + self.params.mem_bw.time_for(len);
        self.meter.reads.record(len, t - now);
        t
    }

    /// `fsync`: flushes dirty data, waits for the window, COMMITs.
    pub fn fsync(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
    ) -> Time {
        let ranges = self.cache.dirty_ranges_of(file);
        let t = self.flush_ranges(net, srv, now, &ranges);
        let t = self.drain_inflight(t);
        let arrive = net.send(t, self.node, srv.node, RPC_HEADER, TrafficClass::Storage);
        let ready = srv.serve_commit(arrive, file);
        net.send(ready, srv.node, self.node, RPC_REPLY, TrafficClass::Storage)
    }

    /// The byte-range-lock + attribute-revalidation round trips ROMIO
    /// performs around every MPI-IO data operation on NFS (`noac` mounts
    /// with `fcntl` locking). Two sequential small RPCs.
    ///
    /// Lock manager traffic travels on its own connection (NLM/lockd) and
    /// its frames are tiny, so switch fair queuing keeps it from waiting
    /// behind other hosts' bulk transfers: the wire cost is plain
    /// propagation+stack latency, while the *server dispatch* still
    /// contends on the daemon pool (the real choke point at scale).
    pub fn lock_roundtrips(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
    ) -> Time {
        let p = net.fabric(TrafficClass::Storage).params();
        let hop = p.per_msg_overhead + p.link.latency;
        let mut t = self.window_gate(now);
        for _ in 0..2 {
            let arrive = t + hop;
            let ready = srv.serve_null(arrive);
            t = ready + hop;
        }
        t
    }

    /// Synchronous write-through — the discipline ROMIO imposes for MPI-IO
    /// on NFS (no write-behind; data must be visible at the server when the
    /// call returns): the data is shipped as `wsize` RPCs and the call
    /// returns only when every RPC has been answered. Like a write-through
    /// cache, the written range is left *clean* in the client page cache,
    /// so the process's own re-reads can hit locally — the buffer/cache
    /// effect behind the paper's >100% read-usage cells.
    pub fn write_direct(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Time {
        assert!(len > 0, "zero-length write");
        let mut t = now;
        // Make room for the write-through fill; dirty evictions (possible
        // when a cached mount shares this client) must be on the wire.
        let evicted = self.cache.ensure_room(len.min(self.cache.capacity()));
        for r in &evicted {
            let mut pos = r.start;
            while pos < r.end {
                let take = self.params.wsize.min(r.end - pos);
                t = self.rpc_write(net, srv, t, r.file, pos, take);
                pos += take;
            }
        }
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let take = self.params.wsize.min(end - pos);
            t = self.rpc_write(net, srv, t, file, pos, take);
            pos += take;
        }
        let t = self.drain_inflight(t);
        self.cache.insert(file, offset, end, false);
        self.meter.writes.record(len, t - now);
        t
    }

    /// Flushes every dirty page and drops the whole client cache (used
    /// between characterization runs, like `drop_caches` on a real client).
    pub fn drop_caches(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
    ) -> Time {
        let ranges = self.cache.dirty_ranges(u64::MAX);
        let t = self.flush_ranges(net, srv, now, &ranges);
        let t = self.drain_inflight(t);
        let evicted = self.cache.ensure_room(self.cache.capacity());
        debug_assert!(evicted.is_empty(), "flush left dirty pages behind");
        self.last_read_end.clear();
        t
    }

    /// Closes the file; with close-to-open semantics this flushes first.
    pub fn close(
        &mut self,
        net: &mut Network,
        srv: &mut NfsServer,
        now: Time,
        file: FileId,
    ) -> Time {
        self.meter.meta_ops += 1;
        if self.params.close_to_open {
            self.fsync(net, srv, now, file)
        } else {
            let arrive = net.send(now, self.node, srv.node, RPC_HEADER, TrafficClass::Storage);
            let ready = srv.serve_meta(arrive, file, false);
            net.send(ready, srv.node, self.node, RPC_REPLY, TrafficClass::Storage)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalFsParams;
    use netsim::FabricParams;
    use simcore::{GIB, MIB};
    use storage::{Disk, DiskParams, Jbod};

    const F: FileId = FileId(1);

    struct Rig {
        net: Network,
        srv: NfsServer,
        client: NfsClient,
    }

    fn rig() -> Rig {
        // Node 0: client; node 1: server.
        let net = Network::split(2, FabricParams::gigabit_ethernet());
        let disk = Disk::new(DiskParams::sata_7200(230, 72), 42);
        let fs = LocalFs::new(LocalFsParams::ext4(2 * GIB), Box::new(Jbod::new(disk)));
        let srv = NfsServer::new(1, NfsServerParams::default(), fs);
        let client = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
        Rig { net, srv, client }
    }

    #[test]
    fn open_write_close_makes_data_durable_on_server() {
        let mut r = rig();
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
        let t = r.client.write(&mut r.net, &mut r.srv, t, F, 0, 8 * MIB);
        let t = r.client.close(&mut r.net, &mut r.srv, t, F);
        assert!(t > Time::ZERO);
        assert_eq!(r.srv.fs().file_size(F), 8 * MIB);
        assert_eq!(r.srv.fs().dirty_bytes(), 0, "close commits on the server");
    }

    #[test]
    fn small_cached_writes_are_fast_until_flush() {
        let mut r = rig();
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
        let start = t;
        let mut now = t;
        for i in 0..64u64 {
            now = r.client.write(&mut r.net, &mut r.srv, now, F, i * MIB, MIB);
        }
        let rate = Bandwidth::measured(64 * MIB, now - start).as_mib_per_sec();
        assert!(rate > 400.0, "client-cached writes at {rate} MiB/s");
    }

    #[test]
    fn sustained_write_is_bounded_by_wire_and_disk() {
        let mut r = rig();
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
        let start = t;
        let mut now = t;
        let total = 4 * GIB; // 2× client RAM
        let mut off = 0;
        while off < total {
            now = r.client.write(&mut r.net, &mut r.srv, now, F, off, 4 * MIB);
            off += 4 * MIB;
        }
        now = r.client.fsync(&mut r.net, &mut r.srv, now, F);
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        // GigE wire ≈ 112 MiB/s; server disk ≈ 68 MiB/s → disk bound.
        assert!(rate < 112.0, "NFS write rate {rate} cannot beat the wire");
        assert!(rate > 35.0, "NFS write rate {rate} collapsed");
    }

    #[test]
    fn cold_sequential_read_streams_near_bottleneck() {
        let mut r = rig();
        r.srv.fs_mut().preallocate(F, 2 * GIB);
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, false);
        let mut now = t;
        let start = t;
        let total = GIB;
        let mut off = 0;
        while off < total {
            now = r.client.read(&mut r.net, &mut r.srv, now, F, off, MIB);
            off += MIB;
        }
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        // Bounded by server disk (~72 MiB/s); pipelining must keep us near it.
        assert!(rate > 35.0 && rate < 112.0, "NFS cold read at {rate} MiB/s");
    }

    #[test]
    fn client_cache_serves_rereads_at_memory_speed() {
        let mut r = rig();
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
        let mut now = r.client.write(&mut r.net, &mut r.srv, t, F, 0, 64 * MIB);
        let start = now;
        now = r.client.read(&mut r.net, &mut r.srv, now, F, 0, 64 * MIB);
        let rate = Bandwidth::measured(64 * MIB, now - start).as_mib_per_sec();
        assert!(rate > 500.0, "client cache re-read at {rate} MiB/s");
    }

    #[test]
    fn reopen_invalidates_client_cache() {
        let mut r = rig();
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
        let t = r.client.write(&mut r.net, &mut r.srv, t, F, 0, 8 * MIB);
        let t = r.client.close(&mut r.net, &mut r.srv, t, F);
        let t = r.client.open(&mut r.net, &mut r.srv, t, F, false);
        let start = t;
        let t_end = r.client.read(&mut r.net, &mut r.srv, t, F, 0, 8 * MIB);
        let rate = Bandwidth::measured(8 * MIB, t_end - start).as_mib_per_sec();
        // Must traverse the network again (≤ wire), not the client cache.
        assert!(rate < 150.0, "post-reopen read at {rate} MiB/s bypassed CTO");
    }

    #[test]
    fn two_clients_share_one_file_through_server() {
        let mut net = Network::split(3, FabricParams::gigabit_ethernet());
        let disk = Disk::new(DiskParams::sata_7200(230, 72), 42);
        let fs = LocalFs::new(LocalFsParams::ext4(2 * GIB), Box::new(Jbod::new(disk)));
        let mut srv = NfsServer::new(2, NfsServerParams::default(), fs);
        let mut c0 = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
        let mut c1 = NfsClient::new(1, NfsClientParams::linux_default(2 * GIB));

        let t0 = c0.open(&mut net, &mut srv, Time::ZERO, F, true);
        let t1 = c1.open(&mut net, &mut srv, Time::ZERO, F, false);
        let t0 = c0.write(&mut net, &mut srv, t0, F, 0, 4 * MIB);
        let t1 = c1.write(&mut net, &mut srv, t1, F, 4 * MIB, 4 * MIB);
        let t0 = c0.close(&mut net, &mut srv, t0, F);
        let t1 = c1.close(&mut net, &mut srv, t1, F);
        assert_eq!(srv.fs().file_size(F), 8 * MIB);

        // Client 0 re-opens and reads client 1's half through the server.
        let t = c0.open(&mut net, &mut srv, t0.max(t1), F, false);
        let t_end = c0.read(&mut net, &mut srv, t, F, 4 * MIB, 4 * MIB);
        assert!(t_end > t);
    }

    #[test]
    fn rpc_window_limits_inflight() {
        let mut r = rig();
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
        // Force flushing by writing beyond the dirty limit in one burst.
        let mut now = t;
        let total = r.client.params().dirty_limit + 64 * MIB;
        let mut off = 0;
        while off < total {
            now = r.client.write(&mut r.net, &mut r.srv, now, F, off, 4 * MIB);
            off += 4 * MIB;
        }
        assert!(
            r.client.inflight.len() <= r.client.params().max_inflight,
            "window exceeded: {}",
            r.client.inflight.len()
        );
    }

    #[test]
    fn write_direct_is_synchronous_and_fills_cache() {
        let mut r = rig();
        let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
        let start = t;
        let t = r
            .client
            .write_direct(&mut r.net, &mut r.srv, t, F, 0, 64 * MIB);
        // Synchronous: bounded by the wire (112 MiB/s), no write-behind.
        let rate = Bandwidth::measured(64 * MIB, t - start).as_mib_per_sec();
        assert!(rate < 112.0, "direct write at {rate} beat the wire");
        assert!(rate > 40.0, "direct write at {rate} collapsed");
        // The server saw everything already (no dirty client state).
        assert_eq!(r.srv.fs().file_size(F), 64 * MIB);
        let (used, dirty, _) = r.client.cache_stats();
        assert_eq!(used, 64 * MIB, "write-through fill");
        assert_eq!(dirty, 0, "write-through leaves nothing dirty");
        // Re-read hits the client cache at memory speed.
        let t2 = r.client.read(&mut r.net, &mut r.srv, t, F, 0, 64 * MIB);
        let reread = Bandwidth::measured(64 * MIB, t2 - t).as_mib_per_sec();
        assert!(reread > 500.0, "re-read after write-through at {reread}");
    }

    #[test]
    fn lock_roundtrips_cost_is_small_and_serializes_on_lockd() {
        let mut r = rig();
        let t1 = r.client.lock_roundtrips(&mut r.net, &mut r.srv, Time::ZERO);
        // Two round trips of ~(100us + 90us + 100us).
        assert!(t1 > Time::from_micros(400) && t1 < Time::from_millis(2));
        // A second client's locks queue behind the first on lockd.
        let mut c2 = NfsClient::new(0, NfsClientParams::linux_default(2 * GIB));
        let t2 = c2.lock_roundtrips(&mut r.net, &mut r.srv, Time::ZERO);
        assert!(t2 > t1, "lockd must serialize concurrent lock traffic");
    }

    #[test]
    fn deterministic_end_to_end() {
        let run = || {
            let mut r = rig();
            let t = r.client.open(&mut r.net, &mut r.srv, Time::ZERO, F, true);
            let mut now = t;
            for i in 0..256u64 {
                now = r.client.write(&mut r.net, &mut r.srv, now, F, i * MIB, MIB);
            }
            let now = r.client.fsync(&mut r.net, &mut r.srv, now, F);
            let mut t = r.client.open(&mut r.net, &mut r.srv, now, F, false);
            for i in 0..256u64 {
                t = r.client.read(&mut r.net, &mut r.srv, t, F, i * MIB, MIB);
            }
            t
        };
        assert_eq!(run(), run());
    }
}
