//! A byte-accurate LRU cache of file ranges with clean/dirty state.
//!
//! The Linux page cache tracks 4 KiB pages; tracking *byte ranges* instead
//! keeps the model exact for sub-page operations while using memory
//! proportional to the number of distinct extents, not the number of pages.
//! Sequential streams coalesce into single segments; strided small writes
//! stay separate — both exactly what the costing needs.
//!
//! Invariants (property-tested):
//! * segments of a file never overlap;
//! * adjacent segments with equal dirty state are merged;
//! * `used()` equals the summed length of all segments and never exceeds
//!   capacity after [`RangeCache::ensure_room`];
//! * every segment is indexed by a unique LRU stamp.

use crate::file::FileId;
use simcore::FxHashMap;
use storage::InlineVec;

/// A cached byte range of some file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Seg {
    end: u64,
    dirty: bool,
    stamp: u64,
}

/// Per-file segment list, sorted by start offset. Sequential streams
/// coalesce, so these lists are short and a sorted vector with binary
/// search beats a tree both in lookups and in cache locality.
type SegList = Vec<(u64, Seg)>;

/// Index of the first segment starting at or after `start`.
fn seg_idx(segs: &SegList, start: u64) -> usize {
    segs.partition_point(|&(s, _)| s < start)
}

/// One recency-ordered cache entry. Entries are appended in stamp order
/// and deleted lazily (tombstoned), so recency updates are O(1) amortized
/// instead of a tree rebalance per touch.
#[derive(Clone, Copy, Debug)]
struct LruEntry {
    stamp: u64,
    file: u64,
    start: u64,
    alive: bool,
}

/// Recency index over all segments: a stamp-sorted vector with lazy
/// deletion. Stamps are allocated monotonically, so insertions append;
/// the only out-of-order inserts are punch/mark-clean left remnants that
/// keep their original (older) stamp, and those either resurrect their
/// own tombstone or pay a rare mid-vector insert.
#[derive(Clone, Debug, Default)]
struct Lru {
    /// Stamp-ascending entries, dead ones tombstoned in place.
    entries: Vec<LruEntry>,
    /// Entries before this index are all dead (advanced by `oldest`).
    head: usize,
    /// Total dead entries; compaction triggers when they dominate.
    dead: usize,
}

impl Lru {
    fn insert(&mut self, stamp: u64, file: u64, start: u64) {
        let fresh = LruEntry {
            stamp,
            file,
            start,
            alive: true,
        };
        match self.entries.last() {
            Some(last) if last.stamp >= stamp => {
                let idx = self.entries.partition_point(|e| e.stamp < stamp);
                if let Some(e) = self.entries.get_mut(idx) {
                    if e.stamp == stamp {
                        debug_assert!(!e.alive, "duplicate live LRU stamp");
                        *e = fresh;
                        self.dead -= 1;
                        self.head = self.head.min(idx);
                        return;
                    }
                }
                self.entries.insert(idx, fresh);
                self.head = self.head.min(idx);
            }
            _ => self.entries.push(fresh),
        }
    }

    fn remove(&mut self, stamp: u64) {
        let idx = self.entries.partition_point(|e| e.stamp < stamp);
        let e = &mut self.entries[idx];
        debug_assert!(e.stamp == stamp && e.alive, "remove of unknown LRU stamp");
        e.alive = false;
        self.dead += 1;
        if self.dead >= 64 && self.dead * 2 > self.entries.len() {
            self.entries.retain(|e| e.alive);
            self.head = 0;
            self.dead = 0;
        }
    }

    /// The least-recently-used live entry, if any.
    fn oldest(&mut self) -> Option<(u64, u64, u64)> {
        while let Some(e) = self.entries.get(self.head) {
            if e.alive {
                return Some((e.stamp, e.file, e.start));
            }
            self.head += 1;
        }
        None
    }

    /// Live `(file, start)` pairs in recency order, oldest first.
    fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries[self.head.min(self.entries.len())..]
            .iter()
            .filter(|e| e.alive)
            .map(|e| (e.file, e.start))
    }
}

/// A (file, start, end) triple returned by flush/evict operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeRef {
    /// Owning file.
    pub file: FileId,
    /// Inclusive start offset.
    pub start: u64,
    /// Exclusive end offset.
    pub end: u64,
}

impl RangeRef {
    /// Range length in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// LRU cache of byte ranges; see the module docs.
#[derive(Clone, Debug)]
pub struct RangeCache {
    capacity: u64,
    used: u64,
    dirty: u64,
    next_stamp: u64,
    files: FxHashMap<u64, SegList>,
    lru: Lru,
}

impl RangeCache {
    /// A cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> RangeCache {
        RangeCache {
            capacity,
            used: 0,
            dirty: 0,
            next_stamp: 0,
            files: FxHashMap::default(),
            lru: Lru::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently dirty.
    pub fn dirty(&self) -> u64 {
        self.dirty
    }

    fn stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Removes the segment starting at `start` from all indexes.
    fn detach(&mut self, file: u64, start: u64) -> Seg {
        let segs = self.files.get_mut(&file).expect("detach of unknown file");
        let idx = seg_idx(segs, start);
        debug_assert!(
            idx < segs.len() && segs[idx].0 == start,
            "detach of unknown segment"
        );
        let (_, seg) = segs.remove(idx);
        self.lru.remove(seg.stamp);
        self.used -= seg.end - start;
        if seg.dirty {
            self.dirty -= seg.end - start;
        }
        seg
    }

    /// Adds a segment to all indexes (no overlap/merge handling).
    fn attach(&mut self, file: u64, start: u64, seg: Seg) {
        debug_assert!(seg.end > start);
        self.used += seg.end - start;
        if seg.dirty {
            self.dirty += seg.end - start;
        }
        self.lru.insert(seg.stamp, file, start);
        let segs = self.files.entry(file).or_default();
        let idx = seg_idx(segs, start);
        debug_assert!(
            idx == segs.len() || segs[idx].0 != start,
            "attach over an existing segment"
        );
        segs.insert(idx, (start, seg));
    }

    /// Segments of `file` overlapping `[start, end)`. Sequential access
    /// overlaps at most a couple of segments, so the snapshot stays inline.
    fn overlapping(&self, file: u64, start: u64, end: u64) -> InlineVec<(u64, Seg), 4> {
        let mut out = InlineVec::new();
        let Some(segs) = self.files.get(&file) else {
            return out;
        };
        let mut idx = seg_idx(segs, start);
        // The predecessor segment may extend into [start, end).
        if idx > 0 && segs[idx - 1].1.end > start {
            out.push(segs[idx - 1]);
        }
        while idx < segs.len() && segs[idx].0 < end {
            out.push(segs[idx]);
            idx += 1;
        }
        out
    }

    /// Removes `[start, end)` from the cache, keeping remnants of partially
    /// overlapped segments. Returns the number of previously-dirty bytes
    /// that were punched out (callers deciding to *discard* dirty data —
    /// only `insert(dirty=true)` over dirty data does — rely on this).
    fn punch(&mut self, file: u64, start: u64, end: u64) -> u64 {
        let mut lost_dirty = 0;
        let overlaps = self.overlapping(file, start, end);
        for &(s, seg) in overlaps.iter() {
            self.detach(file, s);
            let cut_from = s.max(start);
            let cut_to = seg.end.min(end);
            if seg.dirty {
                lost_dirty += cut_to - cut_from;
            }
            if s < start {
                // Left remnant keeps the original stamp.
                self.attach(
                    file,
                    s,
                    Seg {
                        end: start,
                        dirty: seg.dirty,
                        stamp: seg.stamp,
                    },
                );
            }
            if seg.end > end {
                // Right remnant needs a fresh stamp (one stamp per segment).
                let stamp = self.stamp();
                self.attach(
                    file,
                    end,
                    Seg {
                        end: seg.end,
                        dirty: seg.dirty,
                        stamp,
                    },
                );
            }
        }
        lost_dirty
    }

    /// Merges the segment at `start` with adjacent same-state neighbours.
    fn coalesce(&mut self, file: u64, mut start: u64) {
        let segs = self.files.get(&file).expect("coalesce on unknown file");
        let idx = seg_idx(segs, start);
        debug_assert!(
            idx < segs.len() && segs[idx].0 == start,
            "coalesce on unknown segment"
        );
        let seg = segs[idx].1;
        // Merge with predecessor.
        if idx > 0 {
            let (ps, pseg) = segs[idx - 1];
            if pseg.end == start && pseg.dirty == seg.dirty {
                self.detach(file, ps);
                let seg = self.detach(file, start);
                let stamp = self.stamp();
                self.attach(
                    file,
                    ps,
                    Seg {
                        end: seg.end,
                        dirty: seg.dirty,
                        stamp,
                    },
                );
                start = ps;
            }
        }
        // Merge with successor.
        let segs = self.files.get(&file).expect("segment vanished");
        let idx = seg_idx(segs, start);
        debug_assert!(
            idx < segs.len() && segs[idx].0 == start,
            "segment vanished during coalesce"
        );
        let seg = segs[idx].1;
        if idx + 1 < segs.len() {
            let (ns, nseg) = segs[idx + 1];
            if seg.end == ns && nseg.dirty == seg.dirty {
                let nseg = self.detach(file, ns);
                self.detach(file, start);
                let stamp = self.stamp();
                self.attach(
                    file,
                    start,
                    Seg {
                        end: nseg.end,
                        dirty: seg.dirty,
                        stamp,
                    },
                );
            }
        }
    }

    /// Inserts `[start, end)` of `file` with the given dirty state,
    /// replacing any overlapped content. Returns the number of dirty bytes
    /// that were overwritten (nonzero only when rewriting dirty data).
    pub fn insert(&mut self, file: FileId, start: u64, end: u64, dirty: bool) -> u64 {
        assert!(end > start, "empty insert");
        let lost = self.punch(file.0, start, end);
        let stamp = self.stamp();
        self.attach(file.0, start, Seg { end, dirty, stamp });
        self.coalesce(file.0, start);
        lost
    }

    /// Splits `[start, end)` of `file` into cached and missing subranges.
    /// Cached segments are touched (made most-recently-used). The returned
    /// lists are offset-sorted and disjoint; together they cover the range.
    pub fn lookup(&mut self, file: FileId, start: u64, end: u64) -> (Vec<RangeRef>, Vec<RangeRef>) {
        assert!(end > start, "empty lookup");
        let mut hits = Vec::new();
        let mut misses = Vec::new();
        let mut pos = start;
        let overlaps = self.overlapping(file.0, start, end);
        for &(s, seg) in overlaps.iter() {
            let h_from = s.max(start);
            let h_to = seg.end.min(end);
            if h_from > pos {
                misses.push(RangeRef {
                    file,
                    start: pos,
                    end: h_from,
                });
            }
            hits.push(RangeRef {
                file,
                start: h_from,
                end: h_to,
            });
            pos = h_to;
            // Refresh the LRU stamp in place (no segment-list churn).
            let stamp = self.stamp();
            let segs = self.files.get_mut(&file.0).expect("hit on unknown file");
            let idx = seg_idx(segs, s);
            self.lru.remove(segs[idx].1.stamp);
            segs[idx].1.stamp = stamp;
            self.lru.insert(stamp, file.0, s);
        }
        if pos < end {
            misses.push(RangeRef {
                file,
                start: pos,
                end,
            });
        }
        (hits, misses)
    }

    /// Marks `[start, end)` clean where cached (after a successful
    /// writeback). Leaves LRU order unchanged.
    pub fn mark_clean(&mut self, file: FileId, start: u64, end: u64) {
        let overlaps = self.overlapping(file.0, start, end);
        for &(s, seg) in overlaps.iter() {
            if !seg.dirty {
                continue;
            }
            let from = s.max(start);
            let to = seg.end.min(end);
            self.detach(file.0, s);
            if s < from {
                self.attach(
                    file.0,
                    s,
                    Seg {
                        end: from,
                        dirty: true,
                        stamp: seg.stamp,
                    },
                );
            }
            let stamp = self.stamp();
            self.attach(
                file.0,
                from,
                Seg {
                    end: to,
                    dirty: false,
                    stamp,
                },
            );
            if seg.end > to {
                let stamp = self.stamp();
                self.attach(
                    file.0,
                    to,
                    Seg {
                        end: seg.end,
                        dirty: true,
                        stamp,
                    },
                );
            }
            self.coalesce(file.0, from);
        }
    }

    /// Collects up to `max_bytes` of dirty ranges in LRU order, expanding
    /// each pick to its whole file's offset-ordered dirty set for sequential
    /// writeback (what the flusher threads do). Ranges stay dirty until
    /// [`Self::mark_clean`]. Returns offset-sorted ranges per pass.
    pub fn dirty_ranges(&self, max_bytes: u64) -> Vec<RangeRef> {
        let mut out = Vec::new();
        let mut budget = max_bytes;
        let mut files_seen = Vec::new();
        for (file, _) in self.lru.iter() {
            if budget == 0 {
                break;
            }
            if files_seen.contains(&file) {
                continue;
            }
            files_seen.push(file);
            let Some(segs) = self.files.get(&file) else {
                continue;
            };
            for &(s, seg) in segs.iter() {
                if !seg.dirty {
                    continue;
                }
                let len = seg.end - s;
                out.push(RangeRef {
                    file: FileId(file),
                    start: s,
                    end: seg.end,
                });
                budget = budget.saturating_sub(len);
                if budget == 0 {
                    break;
                }
            }
        }
        out
    }

    /// All dirty ranges of `file`, offset-sorted.
    pub fn dirty_ranges_of(&self, file: FileId) -> Vec<RangeRef> {
        self.files
            .get(&file.0)
            .map(|segs| {
                segs.iter()
                    .filter(|(_, seg)| seg.dirty)
                    .map(|&(s, seg)| RangeRef {
                        file,
                        start: s,
                        end: seg.end,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Evicts least-recently-used segments until `need` additional bytes
    /// fit. Clean segments are dropped silently; dirty segments are
    /// returned — the caller must write them out (they are already removed
    /// from the cache and from the dirty count).
    pub fn ensure_room(&mut self, need: u64) -> Vec<RangeRef> {
        let mut must_flush = Vec::new();
        while self.used + need > self.capacity {
            let Some((stamp, file, start)) = self.lru.oldest() else {
                break; // nothing left to evict
            };
            debug_assert_eq!(
                self.files
                    .get(&file)
                    .and_then(|segs| segs.get(seg_idx(segs, start)))
                    .map(|&(s, seg)| (s, seg.stamp)),
                Some((start, stamp))
            );
            let seg = self.detach(file, start);
            if seg.dirty {
                must_flush.push(RangeRef {
                    file: FileId(file),
                    start,
                    end: seg.end,
                });
            }
        }
        must_flush
    }

    /// Drops every cached range of `file` (e.g. on delete). Dirty data is
    /// discarded; returns how many dirty bytes were lost.
    pub fn drop_file(&mut self, file: FileId) -> u64 {
        let Some(segs) = self.files.remove(&file.0) else {
            return 0;
        };
        let mut lost = 0;
        for (s, seg) in segs {
            self.lru.remove(seg.stamp);
            self.used -= seg.end - s;
            if seg.dirty {
                self.dirty -= seg.end - s;
                lost += seg.end - s;
            }
        }
        lost
    }

    /// Number of cached segments (for tests and diagnostics).
    pub fn segments(&self) -> usize {
        self.files.values().map(|segs| segs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FileId = FileId(1);
    const G: FileId = FileId(2);

    fn cache() -> RangeCache {
        RangeCache::new(1 << 20)
    }

    #[test]
    fn insert_and_lookup_roundtrip() {
        let mut c = cache();
        c.insert(F, 100, 200, false);
        let (hits, misses) = c.lookup(F, 50, 250);
        assert_eq!(
            hits,
            vec![RangeRef {
                file: F,
                start: 100,
                end: 200
            }]
        );
        assert_eq!(misses.len(), 2);
        assert_eq!((misses[0].start, misses[0].end), (50, 100));
        assert_eq!((misses[1].start, misses[1].end), (200, 250));
        assert_eq!(c.used(), 100);
    }

    #[test]
    fn adjacent_same_state_segments_merge() {
        let mut c = cache();
        c.insert(F, 0, 100, false);
        c.insert(F, 100, 200, false);
        assert_eq!(c.segments(), 1);
        let (hits, misses) = c.lookup(F, 0, 200);
        assert_eq!(hits.len(), 1);
        assert!(misses.is_empty());
    }

    #[test]
    fn adjacent_different_state_segments_do_not_merge() {
        let mut c = cache();
        c.insert(F, 0, 100, false);
        c.insert(F, 100, 200, true);
        assert_eq!(c.segments(), 2);
        assert_eq!(c.dirty(), 100);
    }

    #[test]
    fn overwrite_splits_partial_overlaps() {
        let mut c = cache();
        c.insert(F, 0, 300, false);
        c.insert(F, 100, 200, true);
        assert_eq!(c.segments(), 3);
        assert_eq!(c.used(), 300);
        assert_eq!(c.dirty(), 100);
        let (hits, misses) = c.lookup(F, 0, 300);
        assert_eq!(hits.len(), 3);
        assert!(misses.is_empty());
    }

    #[test]
    fn dirty_overwrite_reports_lost_bytes() {
        let mut c = cache();
        c.insert(F, 0, 100, true);
        let lost = c.insert(F, 50, 150, true);
        assert_eq!(lost, 50);
        assert_eq!(c.dirty(), 150);
    }

    #[test]
    fn mark_clean_converts_dirty_ranges() {
        let mut c = cache();
        c.insert(F, 0, 1000, true);
        c.mark_clean(F, 200, 700);
        assert_eq!(c.dirty(), 500);
        assert_eq!(c.used(), 1000);
        // Ranges [0,200) and [700,1000) remain dirty.
        let d = c.dirty_ranges_of(F);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].start, d[0].end), (0, 200));
        assert_eq!((d[1].start, d[1].end), (700, 1000));
    }

    #[test]
    fn mark_clean_is_idempotent() {
        let mut c = cache();
        c.insert(F, 0, 100, true);
        c.mark_clean(F, 0, 100);
        c.mark_clean(F, 0, 100);
        assert_eq!(c.dirty(), 0);
        assert_eq!(c.used(), 100);
        assert_eq!(c.segments(), 1);
    }

    #[test]
    fn files_are_independent() {
        let mut c = cache();
        c.insert(F, 0, 100, true);
        c.insert(G, 0, 100, false);
        let (hits, _) = c.lookup(G, 0, 100);
        assert_eq!(hits.len(), 1);
        assert_eq!(c.dirty(), 100);
        assert_eq!(c.drop_file(F), 100);
        assert_eq!(c.dirty(), 0);
        assert_eq!(c.used(), 100);
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = RangeCache::new(300);
        c.insert(F, 0, 100, false);
        c.insert(F, 1000, 1100, false);
        c.insert(F, 2000, 2100, false);
        // Touch the first range so the second is now oldest.
        c.lookup(F, 0, 100);
        let flush = c.ensure_room(100);
        assert!(flush.is_empty());
        assert_eq!(c.used(), 200);
        let (hits, misses) = c.lookup(F, 1000, 1100);
        assert!(hits.is_empty(), "oldest range must be evicted");
        assert_eq!(misses.len(), 1);
    }

    #[test]
    fn eviction_returns_dirty_ranges_for_flush() {
        let mut c = RangeCache::new(100);
        c.insert(F, 0, 100, true);
        let flush = c.ensure_room(50);
        assert_eq!(flush.len(), 1);
        assert_eq!((flush[0].start, flush[0].end), (0, 100));
        assert_eq!(c.dirty(), 0);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn ensure_room_stops_when_empty() {
        let mut c = RangeCache::new(10);
        let flush = c.ensure_room(100); // bigger than capacity
        assert!(flush.is_empty());
    }

    #[test]
    fn dirty_ranges_respects_budget_and_order() {
        let mut c = cache();
        c.insert(F, 0, 100, true);
        c.insert(F, 500, 600, true);
        c.insert(F, 200, 300, true);
        let all = c.dirty_ranges(u64::MAX);
        let offs: Vec<u64> = all.iter().map(|r| r.start).collect();
        assert_eq!(offs, vec![0, 200, 500], "offset-sorted within file");
        let some = c.dirty_ranges(150);
        assert_eq!(some.len(), 2, "budget cuts the list");
    }

    #[test]
    fn range_ref_len() {
        let r = RangeRef {
            file: F,
            start: 10,
            end: 30,
        };
        assert_eq!(r.len(), 20);
        assert!(!r.is_empty());
    }

    #[test]
    fn strided_small_writes_stay_separate() {
        let mut c = cache();
        for i in 0..100u64 {
            c.insert(F, i * 4096, i * 4096 + 1600, true);
        }
        assert_eq!(c.segments(), 100);
        assert_eq!(c.dirty(), 100 * 1600);
    }

    #[test]
    fn sequential_writes_coalesce_to_one_segment() {
        let mut c = cache();
        for i in 0..100u64 {
            c.insert(F, i * 1600, (i + 1) * 1600, true);
        }
        assert_eq!(c.segments(), 1);
        assert_eq!(c.dirty(), 100 * 1600);
    }

    #[test]
    fn lookup_touch_protects_from_eviction() {
        let mut c = RangeCache::new(200);
        c.insert(F, 0, 100, false);
        c.insert(F, 1000, 1100, false);
        // Touch the first (oldest) range; insertion pressure must now evict
        // the second one instead.
        c.lookup(F, 0, 100);
        c.ensure_room(100);
        c.insert(F, 5000, 5100, false);
        let (hits, _) = c.lookup(F, 0, 100);
        assert_eq!(hits.len(), 1, "recently touched range survived");
    }
}
