//! An ext4-like local filesystem model.
//!
//! The model captures the behaviours the paper's evaluation depends on:
//!
//! * **Page-cached writes** complete at memory-copy speed until the dirty
//!   limit is reached, after which writers throttle to device speed
//!   (Linux `dirty_ratio` behaviour).
//! * **Page-cached reads** hit at memory speed; misses are rounded up to the
//!   readahead window for sequential streams, so small sequential records
//!   reach near-device bandwidth while random access pays full positioning.
//! * **Extent allocation**: files grow in large contiguous extents from a
//!   bump allocator (fresh-filesystem assumption), so the device sees the
//!   sequential patterns ext4's delayed allocation produces.
//! * **fsync/close** semantics and metadata operation costs.

use crate::file::FileId;
use crate::meta::{MetaOps, MetaVerb};
use crate::range_cache::{RangeCache, RangeRef};
use simcore::stats::TransferMeter;
use simcore::{Bandwidth, FxHashMap, Time};
use storage::{BlockReq, InlineVec, Volume};

/// Tunables of a local filesystem.
#[derive(Clone, Debug)]
pub struct LocalFsParams {
    /// Page-cache copy bandwidth (one stream).
    pub mem_bw: Bandwidth,
    /// Cost of a metadata operation (open/create/close/stat).
    pub meta_op: Time,
    /// Page-cache capacity in bytes.
    pub cache_capacity: u64,
    /// Dirty bytes beyond which writers throttle (Linux `dirty_ratio`).
    pub dirty_limit: u64,
    /// Dirty level writeback drains down to once throttled.
    pub dirty_background: u64,
    /// Largest single device request issued by writeback.
    pub writeback_chunk: u64,
    /// Readahead window for sequential reads.
    pub readahead: u64,
    /// Extent allocation granularity.
    pub alloc_extent: u64,
}

impl LocalFsParams {
    /// An ext4-like configuration for a node with `ram` bytes of memory.
    pub fn ext4(ram: u64) -> LocalFsParams {
        let cache = ram / 10 * 8; // the OS keeps ~80% of RAM as page cache
        LocalFsParams {
            mem_bw: Bandwidth::from_mib_per_sec(1600),
            meta_op: Time::from_micros(150),
            cache_capacity: cache,
            dirty_limit: cache / 5,
            dirty_background: cache / 10,
            writeback_chunk: 4 * 1024 * 1024,
            readahead: 1024 * 1024,
            alloc_extent: 256 * 1024 * 1024,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct FileMeta {
    size: u64,
    /// `(file_offset, volume_offset, len)` extents, offset-sorted.
    extents: Vec<(u64, u64, u64)>,
}

/// Per-direction filesystem-level transfer statistics.
#[derive(Clone, Debug, Default)]
pub struct FsMeter {
    /// Read-side statistics.
    pub reads: TransferMeter,
    /// Write-side statistics.
    pub writes: TransferMeter,
    /// Metadata operations served.
    pub meta_ops: u64,
}

/// An ext4-like filesystem over a block volume.
pub struct LocalFs {
    params: LocalFsParams,
    cache: RangeCache,
    vol: Box<dyn Volume>,
    files: FxHashMap<FileId, FileMeta>,
    next_vol_off: u64,
    last_read_end: FxHashMap<FileId, u64>,
    meter: FsMeter,
}

impl LocalFs {
    /// Mounts a filesystem on `vol`.
    pub fn new(params: LocalFsParams, vol: Box<dyn Volume>) -> LocalFs {
        let cache = RangeCache::new(params.cache_capacity);
        LocalFs {
            params,
            cache,
            vol,
            files: FxHashMap::default(),
            next_vol_off: 0,
            last_read_end: FxHashMap::default(),
            meter: FsMeter::default(),
        }
    }

    /// The filesystem parameters.
    pub fn params(&self) -> &LocalFsParams {
        &self.params
    }

    /// Filesystem-level statistics.
    pub fn meter(&self) -> &FsMeter {
        &self.meter
    }

    /// Device-level statistics of the backing volume.
    pub fn volume_meter(&self) -> &storage::VolumeMeter {
        self.vol.meter()
    }

    /// The backing volume's kind (for reports).
    pub fn volume_kind(&self) -> &'static str {
        self.vol.kind()
    }

    /// The backing volume (e.g. for rebuild progress).
    pub fn volume(&self) -> &dyn Volume {
        &*self.vol
    }

    /// Mutable access to the backing volume (fault injection, rebuild
    /// control).
    pub fn volume_mut(&mut self) -> &mut dyn Volume {
        &mut *self.vol
    }

    /// Current size of `file` (0 if unknown).
    pub fn file_size(&self, file: FileId) -> u64 {
        self.files.get(&file).map(|m| m.size).unwrap_or(0)
    }

    /// Bytes currently dirty in the page cache.
    pub fn dirty_bytes(&self) -> u64 {
        self.cache.dirty()
    }

    /// Creates (or truncates) a file; returns completion time.
    pub fn create(&mut self, now: Time, file: FileId) -> Time {
        self.cache.drop_file(file);
        self.files.insert(file, FileMeta::default());
        self.last_read_end.remove(&file);
        self.meter.meta_ops += 1;
        now + self.params.meta_op
    }

    /// Opens an existing file (creating it lazily if unknown, as the
    /// simulated workloads often pre-exist their inputs).
    pub fn open(&mut self, now: Time, file: FileId) -> Time {
        self.files.entry(file).or_default();
        self.meter.meta_ops += 1;
        now + self.params.meta_op
    }

    /// Closes a file. Local-filesystem close does not imply flush.
    pub fn close(&mut self, now: Time, _file: FileId) -> Time {
        self.meter.meta_ops += 1;
        now + self.params.meta_op
    }

    /// Looks up a file's attributes (`stat`); fixed metadata cost.
    pub fn stat(&mut self, now: Time, _file: FileId) -> Time {
        self.meter.meta_ops += 1;
        now + self.params.meta_op
    }

    /// Removes a file: drops its cached pages and extent map.
    pub fn unlink(&mut self, now: Time, file: FileId) -> Time {
        self.cache.drop_file(file);
        self.files.remove(&file);
        self.last_read_end.remove(&file);
        self.meter.meta_ops += 1;
        now + self.params.meta_op
    }

    /// Creates a directory entry. Directories are not separately modeled,
    /// so this is a fixed-cost namespace update.
    pub fn mkdir(&mut self, now: Time, _dir: FileId) -> Time {
        self.meter.meta_ops += 1;
        now + self.params.meta_op
    }

    /// Lists a directory; fixed metadata cost.
    pub fn readdir(&mut self, now: Time, _dir: FileId) -> Time {
        self.meter.meta_ops += 1;
        now + self.params.meta_op
    }

    /// Declares that `file` exists with `size` bytes of valid content
    /// (allocated but uncached), e.g. pre-existing benchmark input.
    pub fn preallocate(&mut self, file: FileId, size: u64) {
        self.files.entry(file).or_default();
        self.ensure_extents(file, 0, size);
        let meta = self.files.get_mut(&file).expect("just inserted");
        meta.size = meta.size.max(size);
    }

    /// Grows the extent list to cover `[start, end)`.
    fn ensure_extents(&mut self, file: FileId, _start: u64, end: u64) {
        let align = self.params.alloc_extent;
        let meta = self.files.entry(file).or_default();
        let mut covered: u64 = meta.extents.iter().map(|&(_, _, l)| l).sum();
        while covered < end {
            let len = align;
            meta.extents.push((covered, self.next_vol_off, len));
            self.next_vol_off += len;
            covered += len;
        }
    }

    /// Maps a file byte range to volume ranges. Extents are huge (256 MiB),
    /// so a mapping rarely crosses more than two of them.
    fn map(&mut self, file: FileId, start: u64, end: u64) -> InlineVec<(u64, u64), 4> {
        self.ensure_extents(file, start, end);
        let meta = &self.files[&file];
        let mut out = InlineVec::new();
        for &(foff, voff, len) in &meta.extents {
            let e_end = foff + len;
            if e_end <= start || foff >= end {
                continue;
            }
            let from = start.max(foff);
            let to = end.min(e_end);
            out.push((voff + (from - foff), to - from));
        }
        out
    }

    /// Writes `ranges` to the device, chunked; returns the completion time.
    /// All chunks are issued at `now` (device-level parallelism is the
    /// volume's concern); completion is the last acknowledgment. The whole
    /// chunked run goes down as one call so eligible volumes can take the
    /// bulk fast path — by construction the grant envelope is identical to
    /// submitting each chunk individually.
    fn writeback(&mut self, now: Time, ranges: &[RangeRef]) -> Time {
        let chunk = self.params.writeback_chunk;
        let mut done = now;
        let mut total = 0u64;
        for r in ranges {
            for &(voff, len) in self.map(r.file, r.start, r.end).iter() {
                let g = self.vol.submit_run(now, BlockReq::write(voff, len), chunk);
                done = done.max(g.ack);
                total += len;
            }
            self.cache.mark_clean(r.file, r.start, r.end);
        }
        if total > 0 {
            simcore::obs::emit(|| simcore::obs::ObsEvent::Writeback {
                bytes: total,
                start: now,
                end: done,
            });
        }
        done
    }

    /// Writes `len` bytes at `offset`; returns the instant the caller may
    /// continue (page-cache copy, plus any throttling).
    pub fn write(&mut self, now: Time, file: FileId, offset: u64, len: u64) -> Time {
        assert!(len > 0, "zero-length write");
        let mut t = now;

        // Make room; evicted dirty ranges must hit the device first.
        let must_flush = self.cache.ensure_room(len.min(self.cache.capacity()));
        if !must_flush.is_empty() {
            let evict_start = t;
            let mut evicted = 0u64;
            // These are detached from the cache already; write them out.
            let chunk = self.params.writeback_chunk;
            for r in &must_flush {
                // Arrival advances per chunk here (the writer waits on each
                // ack), so this loop stays event-granular by design.
                for &(voff, l) in self.map(r.file, r.start, r.end).iter() {
                    let mut pos = 0;
                    while pos < l {
                        let take = chunk.min(l - pos);
                        let g = self.vol.submit(t, BlockReq::write(voff + pos, take));
                        t = t.max(g.ack);
                        pos += take;
                    }
                    evicted += l;
                }
            }
            simcore::obs::emit(|| simcore::obs::ObsEvent::CacheEvict {
                bytes: evicted,
                at: evict_start,
            });
        }

        // Copy into the cache.
        t += self.params.mem_bw.time_for(len);
        self.cache.insert(file, offset, offset + len, true);
        let meta = self.files.entry(file).or_default();
        meta.size = meta.size.max(offset + len);

        // Dirty throttling: drain to the background level at device speed.
        if self.cache.dirty() > self.params.dirty_limit {
            let excess = self.cache.dirty() - self.params.dirty_background;
            let ranges = self.cache.dirty_ranges(excess);
            t = self.writeback(t, &ranges);
        }

        self.meter.writes.record(len, t - now);
        t
    }

    /// Reads `len` bytes at `offset`; returns the instant the data is in
    /// the caller's buffer.
    pub fn read(&mut self, now: Time, file: FileId, offset: u64, len: u64) -> Time {
        assert!(len > 0, "zero-length read");
        let end = offset + len;
        let (hits, mut misses) = self.cache.lookup(file, offset, end);
        let hit_bytes: u64 = hits.iter().map(|r| r.len()).sum();

        // Sequential streams extend the final miss by the readahead window.
        let sequential = self.last_read_end.get(&file) == Some(&offset);
        if sequential && self.params.readahead > 0 {
            if let Some(last) = misses.last_mut() {
                if last.end == end {
                    last.end += self.params.readahead;
                }
            }
        }
        self.last_read_end.insert(file, end);

        let mut device_done = now;
        let miss_list = misses.clone();
        let miss_bytes: u64 = miss_list.iter().map(|m| m.len()).sum();
        simcore::obs::emit(|| simcore::obs::ObsEvent::CacheAccess {
            hit_bytes,
            miss_bytes,
            at: now,
        });
        for m in &miss_list {
            let need = m.len();
            let flush = self.cache.ensure_room(need.min(self.cache.capacity()));
            if !flush.is_empty() {
                device_done = self.writeback(device_done, &flush);
            }
            for &(voff, l) in self.map(m.file, m.start, m.end).iter() {
                let g = self.vol.submit(now, BlockReq::read(voff, l));
                device_done = device_done.max(g.ack);
                simcore::obs::emit(|| simcore::obs::ObsEvent::StorageIo {
                    volume: self.vol.kind(),
                    write: false,
                    bytes: l,
                    start: now,
                    end: g.ack,
                });
            }
            self.cache.insert(m.file, m.start, m.end, false);
        }

        let copy = self.params.mem_bw.time_for(len);
        let t = device_done.max(now) + copy;
        self.meter.reads.record(len, t - now);
        t
    }

    /// Flushes `file`'s dirty data and the device caches; returns the
    /// instant everything is durable.
    pub fn fsync(&mut self, now: Time, file: FileId) -> Time {
        let ranges = self.cache.dirty_ranges_of(file);
        let t = self.writeback(now, &ranges);
        let t = self.vol.flush(t).max(t);
        self.meter.meta_ops += 1;
        t
    }

    /// Flushes everything (unmount/sync); returns the durable instant.
    pub fn sync_all(&mut self, now: Time) -> Time {
        let ranges = self.cache.dirty_ranges(u64::MAX);
        let t = self.writeback(now, &ranges);
        self.vol.flush(t).max(t)
    }

    /// Drops the whole page cache (the `drop_caches` knob used between
    /// characterization runs). Dirty data is written out first.
    pub fn drop_caches(&mut self, now: Time) -> Time {
        let t = self.sync_all(now);
        // Evict everything by demanding the full capacity.
        let flush = self.cache.ensure_room(self.cache.capacity());
        debug_assert!(flush.is_empty(), "sync_all left dirty data behind");
        self.last_read_end.clear();
        t
    }
}

impl MetaOps for LocalFs {
    type Ctx<'a> = ();
    type Error = std::convert::Infallible;

    fn meta(
        &mut self,
        _ctx: (),
        now: Time,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Result<Time, Self::Error> {
        Ok(match verb {
            MetaVerb::Create => self.create(now, target),
            MetaVerb::Stat => self.stat(now, target),
            MetaVerb::Unlink => self.unlink(now, target),
            MetaVerb::Mkdir => self.mkdir(now, dir),
            MetaVerb::Readdir => self.readdir(now, dir),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{GIB, MIB};
    use storage::{CachedVolume, Disk, DiskParams, Jbod, WriteCacheParams};

    fn fs_with(ram_gib: u64) -> LocalFs {
        let disk = Disk::new(DiskParams::sata_7200(150, 72), 1);
        LocalFs::new(
            LocalFsParams::ext4(ram_gib * GIB),
            Box::new(Jbod::new(disk)),
        )
    }

    const F: FileId = FileId(1);

    #[test]
    fn cached_writes_run_at_memory_speed() {
        let mut fs = fs_with(2);
        let mut now = fs.create(Time::ZERO, F);
        let start = now;
        // 64 MiB total — far below the ~327 MiB dirty limit of a 2 GiB node.
        for i in 0..16u64 {
            now = fs.write(now, F, i * 4 * MIB, 4 * MIB);
        }
        let rate = Bandwidth::measured(64 * MIB, now - start).as_mib_per_sec();
        assert!(rate > 800.0, "cached writes at {rate} MiB/s");
        assert!(fs.dirty_bytes() > 0);
    }

    #[test]
    fn sustained_writes_throttle_to_device_speed() {
        let mut fs = fs_with(2);
        let mut now = fs.create(Time::ZERO, F);
        let start = now;
        let total = 4 * GIB; // 2× RAM, the paper's IOzone rule
        let mut off = 0;
        while off < total {
            now = fs.write(now, F, off, 4 * MIB);
            off += 4 * MIB;
        }
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        assert!(
            rate > 40.0 && rate < 90.0,
            "sustained write rate {rate} should approach the ~68 MiB/s disk"
        );
    }

    #[test]
    fn reread_within_cache_is_memory_fast() {
        let mut fs = fs_with(2);
        let mut now = fs.create(Time::ZERO, F);
        for i in 0..8u64 {
            now = fs.write(now, F, i * 4 * MIB, 4 * MIB);
        }
        let start = now;
        let mut t = now;
        for i in 0..8u64 {
            t = fs.read(t, F, i * 4 * MIB, 4 * MIB);
        }
        let rate = Bandwidth::measured(32 * MIB, t - start).as_mib_per_sec();
        assert!(rate > 500.0, "cached reads at {rate} MiB/s");
    }

    #[test]
    fn cold_sequential_read_approaches_device_speed() {
        let mut fs = fs_with(2);
        fs.preallocate(F, 2 * GIB);
        let mut now = Time::ZERO;
        let start = now;
        let total = GIB;
        let mut off = 0;
        while off < total {
            now = fs.read(now, F, off, MIB);
            off += MIB;
        }
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        assert!(
            rate > 45.0 && rate < 85.0,
            "cold sequential read at {rate} MiB/s vs 72 MiB/s disk"
        );
    }

    #[test]
    fn small_sequential_reads_benefit_from_readahead() {
        let mut fs = fs_with(2);
        fs.preallocate(F, 2 * GIB);
        let mut now = Time::ZERO;
        let start = now;
        let total = 256 * MIB;
        let block = 32 * 1024;
        let mut off = 0;
        while off < total {
            now = fs.read(now, F, off, block);
            off += block;
        }
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        // Without readahead each 32 KiB read would pay positioning;
        // with it the stream must stay within 2× of device speed.
        assert!(rate > 35.0, "32 KiB sequential reads at {rate} MiB/s");
    }

    #[test]
    fn random_reads_are_much_slower_than_sequential() {
        let mut fs = fs_with(2);
        fs.preallocate(F, 8 * GIB);
        let mut now = Time::from_secs(1);
        let start = now;
        let n = 64u64;
        for i in 0..n {
            // Large prime stride scatters accesses far beyond readahead.
            let off = (i * 997 * MIB) % (8 * GIB - MIB);
            now = fs.read(now, F, off, 64 * 1024);
        }
        let rnd = Bandwidth::measured(n * 64 * 1024, now - start).as_mib_per_sec();
        assert!(rnd < 30.0, "random 64 KiB reads at {rnd} MiB/s");
    }

    #[test]
    fn fsync_forces_durability() {
        let mut fs = fs_with(2);
        let now = fs.create(Time::ZERO, F);
        let t_write = fs.write(now, F, 0, 64 * MIB);
        assert!(fs.dirty_bytes() == 64 * MIB);
        let t_sync = fs.fsync(t_write, F);
        assert!(t_sync > t_write, "fsync must wait for the device");
        assert_eq!(fs.dirty_bytes(), 0);
        // 64 MiB at ~68 MiB/s ≈ 0.95 s of device time.
        let dur = (t_sync - now).as_secs_f64();
        assert!(dur > 0.5, "fsync took {dur}s, device work unaccounted");
    }

    #[test]
    fn file_size_tracks_writes() {
        let mut fs = fs_with(2);
        let now = fs.create(Time::ZERO, F);
        fs.write(now, F, 10 * MIB, MIB);
        assert_eq!(fs.file_size(F), 11 * MIB);
        assert_eq!(fs.file_size(FileId(99)), 0);
    }

    #[test]
    fn create_truncates_cache_state() {
        let mut fs = fs_with(2);
        let now = fs.create(Time::ZERO, F);
        let t = fs.write(now, F, 0, MIB);
        assert!(fs.dirty_bytes() > 0);
        fs.create(t, F);
        assert_eq!(fs.dirty_bytes(), 0);
        assert_eq!(fs.file_size(F), 0);
    }

    #[test]
    fn meta_ops_have_fixed_cost() {
        let mut fs = fs_with(2);
        let t1 = fs.create(Time::ZERO, F);
        let t2 = fs.open(t1, F);
        let t3 = fs.close(t2, F);
        assert_eq!(t3 - Time::ZERO, fs.params().meta_op * 3);
        assert_eq!(fs.meter().meta_ops, 3);
    }

    #[test]
    fn unlink_drops_file_state() {
        let mut fs = fs_with(2);
        let now = fs.create(Time::ZERO, F);
        let t = fs.write(now, F, 0, MIB);
        assert!(fs.dirty_bytes() > 0);
        let t2 = fs.unlink(t, F);
        assert_eq!(t2 - t, fs.params().meta_op);
        assert_eq!(fs.dirty_bytes(), 0);
        assert_eq!(fs.file_size(F), 0);
    }

    #[test]
    fn meta_ops_trait_dispatches_all_verbs() {
        use crate::meta::{MetaOps, MetaVerb};
        let mut fs = fs_with(2);
        let dir = FileId(40);
        let mut t = Time::ZERO;
        for v in MetaVerb::ALL {
            t = fs.meta((), t, v, dir, F).unwrap();
        }
        assert_eq!(t - Time::ZERO, fs.params().meta_op * 5);
        assert_eq!(fs.meter().meta_ops, 5);
    }

    #[test]
    fn drop_caches_defeats_reread_speedup() {
        let mut fs = fs_with(2);
        let now = fs.create(Time::ZERO, F);
        let t = fs.write(now, F, 0, 64 * MIB);
        let t = fs.drop_caches(t);
        let start = t;
        let t_end = fs.read(t, F, 0, 64 * MIB);
        let rate = Bandwidth::measured(64 * MIB, t_end - start).as_mib_per_sec();
        assert!(
            rate < 100.0,
            "read after drop_caches at {rate} MiB/s must hit disk"
        );
    }

    #[test]
    fn works_with_cached_raid_volume() {
        let disks: Vec<Disk> = (0..5)
            .map(|i| Disk::new(DiskParams::sata_7200(150, 72), i + 10))
            .collect();
        let raid = storage::Raid5::new(disks, 256 * 1024, true);
        let vol = CachedVolume::new(WriteCacheParams::controller(256), raid);
        let mut fs = LocalFs::new(LocalFsParams::ext4(2 * GIB), Box::new(vol));
        let mut now = fs.create(Time::ZERO, F);
        let start = now;
        let total = 4 * GIB;
        let mut off = 0;
        while off < total {
            now = fs.write(now, F, off, 4 * MIB);
            off += 4 * MIB;
        }
        let rate = Bandwidth::measured(total, now - start).as_mib_per_sec();
        // RAID 5 over 5 disks sustains several× a single disk.
        assert!(rate > 120.0, "RAID 5 backed fs writes at {rate} MiB/s");
    }

    #[test]
    fn sequential_write_read_cycle_is_deterministic() {
        let run = || {
            let mut fs = fs_with(2);
            let mut now = fs.create(Time::ZERO, F);
            for i in 0..128u64 {
                now = fs.write(now, F, i * MIB, MIB);
            }
            for i in 0..128u64 {
                now = fs.read(now, F, i * MIB, MIB);
            }
            now
        };
        assert_eq!(run(), run());
    }
}
