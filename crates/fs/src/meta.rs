//! Namespace metadata operations (the mdtest axis).
//!
//! Data-path evaluation alone misses the metadata axis that dominates
//! real cluster rankings (IO500's md phases), so every filesystem backend
//! also implements [`MetaOps`]: the five mdtest verbs over a flat
//! `(directory, file)` namespace. Directories are [`FileId`]s like files —
//! the models cost namespace updates without materializing a tree.
//!
//! Backends differ in what surrounding state an operation needs (the
//! local filesystem needs nothing, the NFS client needs the network and
//! its server, the PFS client needs the network), so the trait threads a
//! backend-chosen context type through each call.

use crate::file::FileId;
use serde::{Deserialize, Serialize};
use simcore::Time;

/// One mdtest-style metadata verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetaVerb {
    /// Create an (empty) file in a directory.
    Create,
    /// Look up a file's attributes.
    Stat,
    /// Remove a file from a directory.
    Unlink,
    /// Create a directory.
    Mkdir,
    /// List a directory.
    Readdir,
}

impl MetaVerb {
    /// All verbs, in mdtest phase order.
    pub const ALL: [MetaVerb; 5] = [
        MetaVerb::Mkdir,
        MetaVerb::Create,
        MetaVerb::Stat,
        MetaVerb::Unlink,
        MetaVerb::Readdir,
    ];

    /// Stable label (used in traces and rendered metrics).
    pub fn label(self) -> &'static str {
        match self {
            MetaVerb::Create => "create",
            MetaVerb::Stat => "stat",
            MetaVerb::Unlink => "unlink",
            MetaVerb::Mkdir => "mkdir",
            MetaVerb::Readdir => "readdir",
        }
    }

    /// Whether the verb mutates the namespace (vs. a pure lookup).
    pub fn mutates(self) -> bool {
        matches!(self, MetaVerb::Create | MetaVerb::Unlink | MetaVerb::Mkdir)
    }
}

/// Namespace metadata operations, implemented by every filesystem model.
///
/// `dir` is the containing directory; `target` is the file the verb acts
/// on (for `Mkdir`/`Readdir` the directory itself is the target).
pub trait MetaOps {
    /// Backend-specific state threaded through each call — `()` for the
    /// local filesystem, network + server handles for remote clients.
    type Ctx<'a>;
    /// Backend-specific failure type (`Infallible` for the local
    /// filesystem, timeout/unavailability errors for remote clients).
    type Error;

    /// Performs `verb`; returns the completion time.
    fn meta(
        &mut self,
        ctx: Self::Ctx<'_>,
        now: Time,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Result<Time, Self::Error>;

    /// Creates `file` inside `dir`.
    fn meta_create(
        &mut self,
        ctx: Self::Ctx<'_>,
        now: Time,
        dir: FileId,
        file: FileId,
    ) -> Result<Time, Self::Error> {
        self.meta(ctx, now, MetaVerb::Create, dir, file)
    }

    /// Stats `file` inside `dir`.
    fn meta_stat(
        &mut self,
        ctx: Self::Ctx<'_>,
        now: Time,
        dir: FileId,
        file: FileId,
    ) -> Result<Time, Self::Error> {
        self.meta(ctx, now, MetaVerb::Stat, dir, file)
    }

    /// Unlinks `file` from `dir`.
    fn meta_unlink(
        &mut self,
        ctx: Self::Ctx<'_>,
        now: Time,
        dir: FileId,
        file: FileId,
    ) -> Result<Time, Self::Error> {
        self.meta(ctx, now, MetaVerb::Unlink, dir, file)
    }

    /// Creates directory `dir`.
    fn meta_mkdir(
        &mut self,
        ctx: Self::Ctx<'_>,
        now: Time,
        dir: FileId,
    ) -> Result<Time, Self::Error> {
        self.meta(ctx, now, MetaVerb::Mkdir, dir, dir)
    }

    /// Lists directory `dir`.
    fn meta_readdir(
        &mut self,
        ctx: Self::Ctx<'_>,
        now: Time,
        dir: FileId,
    ) -> Result<Time, Self::Error> {
        self.meta(ctx, now, MetaVerb::Readdir, dir, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_labels_are_stable() {
        let labels: Vec<&str> = MetaVerb::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["mkdir", "create", "stat", "unlink", "readdir"]);
    }

    #[test]
    fn mutating_verbs() {
        assert!(MetaVerb::Create.mutates());
        assert!(MetaVerb::Unlink.mutates());
        assert!(MetaVerb::Mkdir.mutates());
        assert!(!MetaVerb::Stat.mutates());
        assert!(!MetaVerb::Readdir.mutates());
    }
}
