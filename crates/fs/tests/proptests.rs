//! Property tests of the range-cache invariants the filesystem models
//! depend on.

use fs::{FileId, RangeCache};
use proptest::prelude::*;

/// An operation against the cache.
#[derive(Clone, Debug)]
enum Op {
    Insert {
        file: u64,
        start: u64,
        len: u64,
        dirty: bool,
    },
    Lookup {
        file: u64,
        start: u64,
        len: u64,
    },
    MarkClean {
        file: u64,
        start: u64,
        len: u64,
    },
    EnsureRoom {
        need: u64,
    },
    DropFile {
        file: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..3, 0u64..10_000, 1u64..2_000, any::<bool>()).prop_map(
            |(file, start, len, dirty)| Op::Insert {
                file,
                start,
                len,
                dirty
            }
        ),
        (0u64..3, 0u64..10_000, 1u64..2_000).prop_map(|(file, start, len)| Op::Lookup {
            file,
            start,
            len
        }),
        (0u64..3, 0u64..10_000, 1u64..2_000).prop_map(|(file, start, len)| Op::MarkClean {
            file,
            start,
            len
        }),
        (0u64..5_000).prop_map(|need| Op::EnsureRoom { need }),
        (0u64..3).prop_map(|file| Op::DropFile { file }),
    ]
}

proptest! {
    /// Under arbitrary op sequences: `used ≤ capacity` after every
    /// `ensure_room`, `dirty ≤ used` always, lookups partition their range,
    /// and hit/miss ranges never overlap.
    #[test]
    fn cache_invariants_hold(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let capacity = 8_000u64;
        let mut cache = RangeCache::new(capacity);
        for op in ops {
            match op {
                Op::Insert { file, start, len, dirty } => {
                    let flush = cache.ensure_room(len.min(capacity));
                    for r in &flush {
                        prop_assert!(!r.is_empty());
                    }
                    cache.insert(FileId(file), start, start + len, dirty);
                }
                Op::Lookup { file, start, len } => {
                    let (hits, misses) = cache.lookup(FileId(file), start, start + len);
                    let mut covered = 0u64;
                    let mut ranges: Vec<(u64, u64)> = hits
                        .iter()
                        .chain(misses.iter())
                        .map(|r| (r.start, r.end))
                        .collect();
                    ranges.sort_unstable();
                    let mut pos = start;
                    for (s, e) in ranges {
                        prop_assert_eq!(s, pos, "gap or overlap in lookup partition");
                        prop_assert!(e > s);
                        covered += e - s;
                        pos = e;
                    }
                    prop_assert_eq!(pos, start + len);
                    prop_assert_eq!(covered, len);
                }
                Op::MarkClean { file, start, len } => {
                    cache.mark_clean(FileId(file), start, start + len);
                }
                Op::EnsureRoom { need } => {
                    cache.ensure_room(need.min(capacity));
                    prop_assert!(
                        cache.used() + need.min(capacity) <= capacity
                            || cache.used() == 0,
                        "ensure_room left used={} need={}",
                        cache.used(),
                        need
                    );
                }
                Op::DropFile { file } => {
                    cache.drop_file(FileId(file));
                }
            }
            prop_assert!(cache.dirty() <= cache.used(), "dirty exceeds used");
        }
    }

    /// After inserting a range, looking it up is a full hit; after
    /// drop_file it is a full miss.
    #[test]
    fn insert_then_lookup_hits(start in 0u64..100_000, len in 1u64..10_000) {
        let mut cache = RangeCache::new(u64::MAX);
        cache.insert(FileId(1), start, start + len, false);
        let (hits, misses) = cache.lookup(FileId(1), start, start + len);
        prop_assert!(misses.is_empty());
        prop_assert_eq!(hits.iter().map(|r| r.len()).sum::<u64>(), len);

        cache.drop_file(FileId(1));
        let (hits, misses) = cache.lookup(FileId(1), start, start + len);
        prop_assert!(hits.is_empty());
        prop_assert_eq!(misses.iter().map(|r| r.len()).sum::<u64>(), len);
    }

    /// Dirty accounting: inserting dirty then cleaning the same range
    /// always returns the cache to zero dirty bytes.
    #[test]
    fn dirty_roundtrip(ranges in proptest::collection::vec((0u64..50_000, 1u64..5_000), 1..40)) {
        let mut cache = RangeCache::new(u64::MAX);
        for &(s, l) in &ranges {
            cache.insert(FileId(1), s, s + l, true);
        }
        for r in cache.dirty_ranges(u64::MAX) {
            cache.mark_clean(r.file, r.start, r.end);
        }
        prop_assert_eq!(cache.dirty(), 0);
        prop_assert!(cache.used() > 0);
    }
}
