//! Property: collapsed execution is *observationally identical* to full
//! granular execution on symmetric programs — same `RunStats` (wall time
//! and every per-rank counter) and the same per-rank trace event
//! sequences, with the collapsed path provably engaged.

use fs::{FileId, MetaVerb};
use mpisim::machine::FixedMachine;
use mpisim::{
    collapsed_run_count, MpiOp, OpStream, Runtime, SignedStream, StreamSignature, TraceEvent,
    VecSink, VecStream,
};
use proptest::prelude::*;
use simcore::Time;

const FILE: FileId = FileId(7);
const DIR: FileId = FileId(8);

/// One op per round per rank, drawn from the collapse-safe set. All ranks
/// of one *group* share the program shape; only offsets (and metadata
/// targets) are rank-indexed. Barriers are shared across groups so
/// multi-cohort runs stay deadlock-free.
fn symmetric_op(round: usize, b: u8, group: usize, rank: usize) -> MpiOp {
    let g = group as u64;
    match b % 8 {
        0 => MpiOp::Compute(Time::from_micros(u64::from(b) + 1 + g * 3)),
        1 => MpiOp::WriteAt {
            file: FILE,
            offset: rank as u64 * 1_000_000 + round as u64 * 1000,
            len: (u64::from(b) + 1) * 100 + g * 13,
        },
        2 => MpiOp::ReadAt {
            file: FILE,
            offset: rank as u64 * 500_000 + round as u64 * 100,
            len: (u64::from(b) + 1) * 50 + g * 7,
        },
        3 => MpiOp::Barrier,
        4 => MpiOp::FileOpen {
            file: FILE,
            create: b % 16 < 8,
        },
        5 => MpiOp::Meta {
            verb: match b % 3 {
                0 => MetaVerb::Create,
                1 => MetaVerb::Stat,
                _ => MetaVerb::Unlink,
            },
            dir: DIR,
            file: FileId(1000 + rank as u64),
        },
        6 => MpiOp::FileSync { file: FILE },
        _ => MpiOp::Marker(u32::from(b)),
    }
}

/// Builds one signed program per rank; ranks with the same `rank % groups`
/// form one cohort (identical shape modulo rank-indexed offsets).
fn signed_programs(world: usize, groups: usize, rounds: &[u8]) -> Vec<Box<dyn OpStream>> {
    (0..world)
        .map(|rank| {
            let group = rank % groups;
            let ops: Vec<MpiOp> = rounds
                .iter()
                .enumerate()
                .map(|(round, &b)| symmetric_op(round, b, group, rank))
                .collect();
            let sig = StreamSignature::from_shape(
                &format!("collapse-prop|{group}|{rounds:?}"),
                ops.len() as u64,
            );
            Box::new(SignedStream::new(Box::new(VecStream::new(ops)), sig)) as Box<dyn OpStream>
        })
        .collect()
}

fn run(
    world: usize,
    groups: usize,
    rounds: &[u8],
    collapse: bool,
) -> (mpisim::RunStats, Vec<TraceEvent>) {
    let placement: Vec<usize> = (0..world).collect();
    let mut machine = FixedMachine::new(world);
    let mut sink = VecSink::new();
    let stats = Runtime::default().with_collapse(collapse).run(
        &mut machine,
        &placement,
        signed_programs(world, groups, rounds),
        &mut sink,
    );
    (stats, sink.events)
}

fn per_rank_events(events: &[TraceEvent], world: usize) -> Vec<Vec<TraceEvent>> {
    let mut per = vec![Vec::new(); world];
    for &ev in events {
        per[ev.rank].push(ev);
    }
    per
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collapsed_equals_full_execution(
        world in 2usize..9,
        groups in 1usize..3,
        rounds in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        // All-singleton cohorts (every rank its own group) correctly stay
        // granular; pigeonhole world > groups guarantees a real cohort.
        prop_assume!(world > groups);
        let before = collapsed_run_count();
        let (full, full_events) = run(world, groups, &rounds, false);
        prop_assert_eq!(collapsed_run_count(), before, "toggle off must stay granular");
        let (collapsed, collapsed_events) = run(world, groups, &rounds, true);
        prop_assert!(
            collapsed_run_count() > before,
            "symmetric run on a rank-invariant machine must collapse"
        );

        prop_assert_eq!(&full, &collapsed);
        // Per-rank trace sequences are identical, not merely equinumerous:
        // symmetric ranks share the representative's exact timings.
        let full_per = per_rank_events(&full_events, world);
        let collapsed_per = per_rank_events(&collapsed_events, world);
        prop_assert_eq!(full_per, collapsed_per);
    }
}

#[test]
fn unsigned_programs_stay_granular() {
    let before = collapsed_run_count();
    let placement = [0usize, 1];
    let mut machine = FixedMachine::new(2);
    let mut sink = VecSink::new();
    let programs: Vec<Box<dyn OpStream>> = (0..2)
        .map(|_| {
            Box::new(VecStream::new(vec![MpiOp::Compute(Time::from_micros(5))]))
                as Box<dyn OpStream>
        })
        .collect();
    Runtime::default().run(&mut machine, &placement, programs, &mut sink);
    assert_eq!(collapsed_run_count(), before);
}

#[test]
fn shared_nodes_stay_granular() {
    let before = collapsed_run_count();
    let placement = [0usize, 0];
    let mut machine = FixedMachine::new(1);
    let mut sink = VecSink::new();
    Runtime::default().run(
        &mut machine,
        &placement,
        signed_programs(2, 1, &[0, 1, 3]),
        &mut sink,
    );
    assert_eq!(
        collapsed_run_count(),
        before,
        "two ranks on one node must not collapse"
    );
}

#[test]
fn chaos_injection_disables_collapse() {
    let _guard = simcore::chaos::install(simcore::chaos::HostFaultPlan::none());
    let before = collapsed_run_count();
    let placement = [0usize, 1];
    let mut machine = FixedMachine::new(2);
    let mut sink = VecSink::new();
    Runtime::default().run(
        &mut machine,
        &placement,
        signed_programs(2, 1, &[0, 1, 3]),
        &mut sink,
    );
    assert_eq!(
        collapsed_run_count(),
        before,
        "active chaos must force granular execution"
    );
}

#[test]
#[should_panic(expected = "signature violated")]
fn lying_signature_is_detected() {
    // Two ranks claim the same shape but run different lengths.
    let sig = StreamSignature::from_shape("liar", 1);
    let programs: Vec<Box<dyn OpStream>> = vec![
        Box::new(SignedStream::new(
            Box::new(VecStream::new(vec![MpiOp::WriteAt {
                file: FILE,
                offset: 0,
                len: 100,
            }])),
            sig,
        )),
        Box::new(SignedStream::new(
            Box::new(VecStream::new(vec![MpiOp::WriteAt {
                file: FILE,
                offset: 0,
                len: 999,
            }])),
            sig,
        )),
    ];
    let mut machine = FixedMachine::new(2);
    let mut sink = VecSink::new();
    Runtime::default().run(&mut machine, &[0, 1], programs, &mut sink);
}
