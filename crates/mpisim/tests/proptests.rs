//! Property tests of the MPI runtime: random well-formed programs always
//! terminate with consistent accounting.

use mpisim::machine::FixedMachine;
use mpisim::{MpiOp, NullSink, Runtime, VecStream};
use proptest::prelude::*;
use simcore::Time;

/// Generates a random well-formed multi-rank program: compute bursts,
/// matched ring exchanges (blocking and nonblocking), barriers, collectives
/// and file I/O, arranged so no deadlock is possible.
fn random_programs(world: usize, rounds: &[u8]) -> Vec<Vec<MpiOp>> {
    let mut programs: Vec<Vec<MpiOp>> = (0..world).map(|_| Vec::new()).collect();
    for (round, &kind) in rounds.iter().enumerate() {
        let tag = round as u32;
        match kind % 6 {
            0 => {
                for ops in programs.iter_mut() {
                    ops.push(MpiOp::Compute(Time::from_micros(50 + round as u64)));
                }
            }
            1 => {
                // Ring exchange: everyone sends right, receives from left.
                for (r, ops) in programs.iter_mut().enumerate() {
                    let right = (r + 1) % world;
                    let left = (r + world - 1) % world;
                    ops.push(MpiOp::Send {
                        dst: right,
                        bytes: 1000,
                        tag,
                    });
                    ops.push(MpiOp::Recv { src: left, tag });
                }
            }
            2 => {
                for ops in programs.iter_mut() {
                    ops.push(MpiOp::Barrier);
                }
            }
            3 => {
                for ops in programs.iter_mut() {
                    ops.push(MpiOp::Allreduce { bytes: 64 });
                }
            }
            4 => {
                // Nonblocking ring exchange completed by WaitAll.
                for (r, ops) in programs.iter_mut().enumerate() {
                    let right = (r + 1) % world;
                    let left = (r + world - 1) % world;
                    ops.push(MpiOp::Irecv { src: left, tag });
                    ops.push(MpiOp::Isend {
                        dst: right,
                        bytes: 2000,
                        tag,
                    });
                    ops.push(MpiOp::WaitAll);
                }
            }
            _ => {
                for (r, ops) in programs.iter_mut().enumerate() {
                    let file = fs::FileId(9);
                    ops.push(MpiOp::WriteAt {
                        file,
                        offset: (round * world + r) as u64 * 4096,
                        len: 4096,
                    });
                }
            }
        }
    }
    programs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any well-formed program terminates; wall time covers every rank;
    /// per-rank time categories never exceed the rank's end time.
    #[test]
    fn random_programs_terminate_with_consistent_accounting(
        world in 2usize..6,
        rounds in proptest::collection::vec(any::<u8>(), 1..20),
    ) {
        let placement: Vec<usize> = (0..world).map(|r| r % 3).collect();
        let mut machine = FixedMachine::new(3);
        let mut sink = NullSink;
        let programs = random_programs(world, &rounds)
            .into_iter()
            .map(|ops| Box::new(VecStream::new(ops)) as Box<dyn mpisim::OpStream>)
            .collect();
        let stats = Runtime::default().run(&mut machine, &placement, programs, &mut sink);
        prop_assert_eq!(stats.per_rank.len(), world);
        for (r, rs) in stats.per_rank.iter().enumerate() {
            prop_assert!(rs.end <= stats.wall_time);
            let accounted = rs.io_time + rs.comm_time + rs.compute_time + rs.meta_time;
            prop_assert!(
                accounted <= rs.end + Time::from_micros(1),
                "rank {} accounted {:?} beyond end {:?}",
                r,
                accounted,
                rs.end
            );
        }
    }

    /// Determinism: identical programs and placements give identical stats.
    #[test]
    fn runs_are_deterministic(
        world in 2usize..5,
        rounds in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let run = || {
            let placement: Vec<usize> = (0..world).collect();
            let mut machine = FixedMachine::new(world);
            let mut sink = NullSink;
            let programs = random_programs(world, &rounds)
                .into_iter()
                .map(|ops| Box::new(VecStream::new(ops)) as Box<dyn mpisim::OpStream>)
                .collect();
            let stats = Runtime::default().run(&mut machine, &placement, programs, &mut sink);
            (
                stats.wall_time,
                stats
                    .per_rank
                    .iter()
                    .map(|r| (r.end, r.comm_time, r.io_time))
                    .collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
