//! The machine abstraction the runtime executes against.

use fs::{FileId, MetaVerb};
use netsim::NodeId;
use simcore::Time;

/// Everything the MPI runtime needs from the underlying cluster: message
/// transport and per-node file I/O. The `cluster` crate provides the real
/// implementation (routing file ids to local mounts or NFS); tests use
/// synthetic machines.
///
/// All methods take and return absolute simulation times; the runtime
/// guarantees nondecreasing invocation times, which keeps the timeline
/// resources inside implementations exact.
pub trait Machine {
    /// Number of nodes.
    fn nodes(&self) -> usize;

    /// Delivers `bytes` from `from` to `to` over the MPI network; returns
    /// the delivery instant at the receiver.
    fn mpi_send(&mut self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Time;

    /// Opens (or creates) `file` from `node`; returns completion.
    fn io_open(&mut self, now: Time, node: NodeId, file: FileId, create: bool) -> Time;

    /// Closes `file` from `node`; returns completion (an NFS mount flushes
    /// here — close-to-open semantics).
    fn io_close(&mut self, now: Time, node: NodeId, file: FileId) -> Time;

    /// Reads from `file`; returns when the data is available on `node`.
    fn io_read(&mut self, now: Time, node: NodeId, file: FileId, offset: u64, len: u64) -> Time;

    /// Writes to `file`; returns when the writer may continue on `node`.
    fn io_write(&mut self, now: Time, node: NodeId, file: FileId, offset: u64, len: u64) -> Time;

    /// Forces `file` durable; returns the durable instant.
    fn io_sync(&mut self, now: Time, node: NodeId, file: FileId) -> Time;

    /// Performs an mdtest-class metadata verb on `target` inside `dir`
    /// from `node`; returns completion. Machines without a dedicated
    /// metadata path (synthetic test machines) default to the cost of a
    /// non-creating open.
    fn io_meta(
        &mut self,
        now: Time,
        node: NodeId,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Time {
        let _ = (verb, dir);
        self.io_open(now, node, target, false)
    }

    /// Whether op costs are *rank-invariant*: the result of every `io_*`
    /// call and the duration of every `mpi_send` depend only on the op's
    /// parameters (kind, length) and the issuing rank's own prior
    /// operations — never on other ranks' activity, on the node id within
    /// a [`Machine::node_class`], or on the file offset. Implementations
    /// answering `true` additionally tolerate invocation times that are
    /// monotone *per rank* rather than globally, because the collapsed
    /// executor replays one representative rank's timeline for a whole
    /// cohort. Contention-modelling machines must answer `false` (the
    /// default); only machines whose state is fully partitioned per node
    /// may opt in.
    fn rank_invariant(&self) -> bool {
        false
    }

    /// Equivalence class of `node` for symmetric-cohort grouping: two
    /// nodes in the same class promise identical op costs. The default
    /// (one class for every node) is correct for any machine that is
    /// [`Machine::rank_invariant`]; heterogeneous machines refine it.
    fn node_class(&self, node: NodeId) -> u64 {
        let _ = node;
        0
    }
}

/// A synthetic machine with fixed costs, for runtime unit tests.
#[derive(Clone, Debug)]
pub struct FixedMachine {
    /// Node count.
    pub node_count: usize,
    /// Cost of delivering any message.
    pub msg_cost: Time,
    /// Cost per byte of I/O (as a rate denominator in ns/byte).
    pub io_ns_per_byte: u64,
    /// Fixed per-I/O-op cost.
    pub io_fixed: Time,
}

impl FixedMachine {
    /// A machine with easy-to-reason-about costs.
    pub fn new(node_count: usize) -> FixedMachine {
        FixedMachine {
            node_count,
            msg_cost: Time::from_micros(100),
            io_ns_per_byte: 10, // 100 MB/s
            io_fixed: Time::from_micros(50),
        }
    }

    fn io_cost(&self, len: u64) -> Time {
        self.io_fixed + Time::from_nanos(len * self.io_ns_per_byte)
    }
}

impl Machine for FixedMachine {
    fn nodes(&self) -> usize {
        self.node_count
    }

    fn rank_invariant(&self) -> bool {
        // Every cost below is a pure function of the op's length.
        true
    }

    fn mpi_send(&mut self, now: Time, _from: NodeId, _to: NodeId, _bytes: u64) -> Time {
        now + self.msg_cost
    }

    fn io_open(&mut self, now: Time, _node: NodeId, _file: FileId, _create: bool) -> Time {
        now + self.io_fixed
    }

    fn io_close(&mut self, now: Time, _node: NodeId, _file: FileId) -> Time {
        now + self.io_fixed
    }

    fn io_read(&mut self, now: Time, _node: NodeId, _file: FileId, _offset: u64, len: u64) -> Time {
        now + self.io_cost(len)
    }

    fn io_write(
        &mut self,
        now: Time,
        _node: NodeId,
        _file: FileId,
        _offset: u64,
        len: u64,
    ) -> Time {
        now + self.io_cost(len)
    }

    fn io_sync(&mut self, now: Time, _node: NodeId, _file: FileId) -> Time {
        now + self.io_fixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_machine_costs() {
        let mut m = FixedMachine::new(4);
        assert_eq!(m.nodes(), 4);
        let t = m.mpi_send(Time::ZERO, 0, 1, 1000);
        assert_eq!(t, Time::from_micros(100));
        let t = m.io_write(Time::ZERO, 0, FileId(1), 0, 1000);
        assert_eq!(t, Time::from_micros(50) + Time::from_micros(10));
    }
}
