//! MPI operation programs.

use fs::{FileId, MetaVerb};
use simcore::Time;

/// A rank index within `MPI_COMM_WORLD`.
pub type Rank = usize;

/// One MPI (or MPI-IO) primitive executed by a rank.
///
/// The set corresponds to what the paper's extended PAS2P tracing captures:
/// computation, communication and "all I/O primitives of the MPI-2
/// standard" relevant to the studied benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpiOp {
    /// Local computation for the given duration.
    Compute(Time),
    /// Point-to-point send to `dst` with a matching tag.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Message payload size.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Blocking receive from `src` with a matching tag.
    Recv {
        /// Source rank.
        src: Rank,
        /// Match tag.
        tag: u32,
    },
    /// Nonblocking send (`MPI_Isend`): never blocks; completion is awaited
    /// by the next [`MpiOp::WaitAll`].
    Isend {
        /// Destination rank.
        dst: Rank,
        /// Message payload size.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Nonblocking receive (`MPI_Irecv`): posts the receive and continues;
    /// completion is awaited by the next [`MpiOp::WaitAll`].
    Irecv {
        /// Source rank.
        src: Rank,
        /// Match tag.
        tag: u32,
    },
    /// Completes every outstanding nonblocking operation of this rank
    /// (`MPI_Waitall` over all requests, as BT's solver issues it).
    WaitAll,
    /// Synchronize all ranks.
    Barrier,
    /// Broadcast `bytes` from `root` to all ranks (binomial tree).
    Bcast {
        /// Source rank.
        root: Rank,
        /// Payload size.
        bytes: u64,
    },
    /// All-reduce `bytes` across all ranks (reduce-to-root + broadcast).
    Allreduce {
        /// Per-rank contribution size.
        bytes: u64,
    },
    /// Open (optionally create) a file.
    FileOpen {
        /// Target file.
        file: FileId,
        /// Whether the file is created/truncated.
        create: bool,
    },
    /// Close a file.
    FileClose {
        /// Target file.
        file: FileId,
    },
    /// Independent write at an explicit offset (`MPI_File_write_at`).
    WriteAt {
        /// Target file.
        file: FileId,
        /// File offset in bytes.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Independent read at an explicit offset (`MPI_File_read_at`).
    ReadAt {
        /// Target file.
        file: FileId,
        /// File offset in bytes.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Collective write with collective buffering
    /// (`MPI_File_write_at_all`); every world rank must call it.
    WriteAtAll {
        /// Target file.
        file: FileId,
        /// This rank's file offset.
        offset: u64,
        /// This rank's contribution length.
        len: u64,
    },
    /// Collective read (`MPI_File_read_at_all`).
    ReadAtAll {
        /// Target file.
        file: FileId,
        /// This rank's file offset.
        offset: u64,
        /// This rank's length.
        len: u64,
    },
    /// Flush a file to stable storage (`MPI_File_sync`).
    FileSync {
        /// Target file.
        file: FileId,
    },
    /// An mdtest-class metadata operation (create/stat/unlink/mkdir/
    /// readdir) against a directory's namespace entry.
    Meta {
        /// The metadata verb.
        verb: MetaVerb,
        /// Containing directory (routes the op to the directory's mount).
        dir: FileId,
        /// File the verb acts on (the directory itself for mkdir/readdir).
        file: FileId,
    },
    /// A named section marker recorded in the trace (used by workloads to
    /// label phases like MADbench2's S/W/C functions). No simulated cost.
    Marker(u32),
}

/// A symmetry fingerprint asserted by a workload generator over a rank
/// program (see [`SignedStream`]).
///
/// Two programs carrying the same signature promise to be *identical
/// modulo rank-indexed offsets*: the same sequence of op kinds, the same
/// durations, files and lengths, with only `offset` fields (and `Meta`
/// targets) allowed to differ per rank. The signature further promises
/// that the program contains only *collapse-safe* ops — no point-to-point
/// messaging, no collectives other than `Barrier`, nothing whose cost
/// couples ranks outside a barrier. The collapsed executor trusts this
/// assertion and panics if stepping ever contradicts it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamSignature {
    /// Fingerprint of the rank-independent program shape.
    pub fingerprint: u64,
    /// Number of operations in the program.
    pub ops: u64,
}

impl StreamSignature {
    /// Builds a signature from a textual description of the program shape
    /// (generator name plus every rank-independent parameter) and the op
    /// count. The description must *not* include rank-indexed values.
    pub fn from_shape(shape: &str, ops: u64) -> StreamSignature {
        // FNV-1a: stable, dependency-free, collision-safe enough for the
        // handful of distinct program shapes alive in one run.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in shape.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StreamSignature {
            fingerprint: h,
            ops,
        }
    }
}

/// A lazily generated stream of operations for one rank.
///
/// Implemented by workload generators so multi-million-op programs never
/// materialize in memory.
pub trait OpStream {
    /// The next operation, or `None` when the rank's program ends.
    fn next_op(&mut self) -> Option<MpiOp>;

    /// The program's symmetry signature, if the generator can assert one
    /// (see [`StreamSignature`]). `None` — the default — means the runtime
    /// must execute this rank granularly.
    fn signature(&self) -> Option<StreamSignature> {
        None
    }
}

/// An [`OpStream`] wrapper carrying a [`StreamSignature`] asserted by the
/// workload generator that built it.
pub struct SignedStream {
    inner: Box<dyn OpStream>,
    sig: StreamSignature,
}

impl SignedStream {
    /// Attaches `sig` to `inner`. The caller vouches for the signature's
    /// contract; the collapsed executor panics on any violation it can
    /// observe.
    pub fn new(inner: Box<dyn OpStream>, sig: StreamSignature) -> SignedStream {
        SignedStream { inner, sig }
    }
}

impl OpStream for SignedStream {
    fn next_op(&mut self) -> Option<MpiOp> {
        self.inner.next_op()
    }

    fn signature(&self) -> Option<StreamSignature> {
        Some(self.sig)
    }
}

/// An [`OpStream`] over a pre-built vector.
pub struct VecStream {
    ops: std::vec::IntoIter<MpiOp>,
}

impl VecStream {
    /// Wraps `ops` as a stream.
    pub fn new(ops: Vec<MpiOp>) -> VecStream {
        VecStream {
            ops: ops.into_iter(),
        }
    }
}

impl OpStream for VecStream {
    fn next_op(&mut self) -> Option<MpiOp> {
        self.ops.next()
    }
}

impl From<Vec<MpiOp>> for VecStream {
    fn from(ops: Vec<MpiOp>) -> Self {
        VecStream::new(ops)
    }
}

/// An [`OpStream`] produced by a closure from the op index.
pub struct GenStream<F> {
    len: usize,
    pos: usize,
    gen: F,
}

impl<F: FnMut(usize) -> MpiOp> GenStream<F> {
    /// A stream of `len` operations generated by `gen(index)`.
    pub fn new(len: usize, gen: F) -> GenStream<F> {
        GenStream { len, pos: 0, gen }
    }
}

impl<F: FnMut(usize) -> MpiOp> OpStream for GenStream<F> {
    fn next_op(&mut self) -> Option<MpiOp> {
        if self.pos >= self.len {
            return None;
        }
        let op = (self.gen)(self.pos);
        self.pos += 1;
        Some(op)
    }
}

/// Concatenates several op streams into one.
pub struct ChainStream {
    parts: Vec<Box<dyn OpStream>>,
    idx: usize,
}

impl ChainStream {
    /// A stream yielding all of `parts` in order.
    pub fn new(parts: Vec<Box<dyn OpStream>>) -> ChainStream {
        ChainStream { parts, idx: 0 }
    }
}

impl OpStream for ChainStream {
    fn next_op(&mut self) -> Option<MpiOp> {
        while self.idx < self.parts.len() {
            if let Some(op) = self.parts[self.idx].next_op() {
                return Some(op);
            }
            self.idx += 1;
        }
        None
    }
}

/// An [`OpStream`] that materializes one *chunk* of operations at a time.
///
/// Workloads with millions of operations (BT-IO *simple*) generate each
/// phase (a few thousand ops) on demand via `gen(chunk_index)` instead of
/// building the whole program; memory stays bounded by the largest chunk.
pub struct ChunkedStream<F> {
    chunks: usize,
    next_chunk: usize,
    cur: std::vec::IntoIter<MpiOp>,
    gen: F,
}

impl<F: FnMut(usize) -> Vec<MpiOp>> ChunkedStream<F> {
    /// A stream over `chunks` chunks produced by `gen(index)`.
    pub fn new(chunks: usize, gen: F) -> ChunkedStream<F> {
        ChunkedStream {
            chunks,
            next_chunk: 0,
            cur: Vec::new().into_iter(),
            gen,
        }
    }
}

impl<F: FnMut(usize) -> Vec<MpiOp>> OpStream for ChunkedStream<F> {
    fn next_op(&mut self) -> Option<MpiOp> {
        loop {
            if let Some(op) = self.cur.next() {
                return Some(op);
            }
            if self.next_chunk >= self.chunks {
                return None;
            }
            let chunk = (self.gen)(self.next_chunk);
            self.next_chunk += 1;
            self.cur = chunk.into_iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_stream_yields_in_order() {
        let mut s = VecStream::new(vec![MpiOp::Barrier, MpiOp::Marker(7)]);
        assert_eq!(s.next_op(), Some(MpiOp::Barrier));
        assert_eq!(s.next_op(), Some(MpiOp::Marker(7)));
        assert_eq!(s.next_op(), None);
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn gen_stream_generates_lazily() {
        let mut s = GenStream::new(3, |i| MpiOp::Compute(Time::from_nanos(i as u64)));
        assert_eq!(s.next_op(), Some(MpiOp::Compute(Time::from_nanos(0))));
        assert_eq!(s.next_op(), Some(MpiOp::Compute(Time::from_nanos(1))));
        assert_eq!(s.next_op(), Some(MpiOp::Compute(Time::from_nanos(2))));
        assert_eq!(s.next_op(), None);
    }

    #[test]
    fn chunked_stream_concatenates_chunks() {
        let mut s = ChunkedStream::new(3, |c| {
            if c == 1 {
                vec![] // empty chunks are skipped transparently
            } else {
                vec![MpiOp::Marker(c as u32), MpiOp::Barrier]
            }
        });
        assert_eq!(s.next_op(), Some(MpiOp::Marker(0)));
        assert_eq!(s.next_op(), Some(MpiOp::Barrier));
        assert_eq!(s.next_op(), Some(MpiOp::Marker(2)));
        assert_eq!(s.next_op(), Some(MpiOp::Barrier));
        assert_eq!(s.next_op(), None);
    }
}
