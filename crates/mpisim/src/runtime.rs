//! The MPI runtime: executes rank programs on a machine.

use crate::machine::Machine;
use crate::op::{MpiOp, OpStream, Rank};
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use fs::FileId;
use netsim::NodeId;
use simcore::{Abort, EventQueue, Time, Watchdog};
use std::collections::{HashMap, VecDeque};

/// Runtime tunables (MPICH-like defaults).
#[derive(Clone, Debug)]
pub struct RuntimeParams {
    /// Messages up to this size are sent eagerly (sender does not block).
    pub eager_threshold: u64,
    /// Sender-side software overhead per message.
    pub send_overhead: Time,
    /// Receiver-side software overhead per message.
    pub recv_overhead: Time,
    /// Per-hop cost of the barrier dissemination algorithm.
    pub barrier_hop: Time,
    /// Alignment of aggregator file domains in collective buffering.
    pub cb_align: u64,
}

impl Default for RuntimeParams {
    fn default() -> Self {
        RuntimeParams {
            eager_threshold: 64 * 1024,
            send_overhead: Time::from_micros(5),
            recv_overhead: Time::from_micros(2),
            barrier_hop: Time::from_micros(60),
            cb_align: 1024 * 1024,
        }
    }
}

/// Per-rank outcome of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// When the rank finished its program.
    pub end: Time,
    /// Time inside file data operations (the paper's "I/O time").
    pub io_time: Time,
    /// Time inside communication operations.
    pub comm_time: Time,
    /// Time inside compute operations.
    pub compute_time: Time,
    /// Time inside metadata operations (open/close/sync).
    pub meta_time: Time,
    /// Bytes written at application level.
    pub bytes_written: u64,
    /// Bytes read at application level.
    pub bytes_read: u64,
    /// Number of data I/O operations.
    pub io_ops: u64,
    /// Number of mdtest-class metadata operations ([`MpiOp::Meta`]).
    pub meta_ops: u64,
}

/// Whole-run outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Completion time of the slowest rank.
    pub wall_time: Time,
    /// Per-rank statistics.
    pub per_rank: Vec<RankStats>,
}

impl RunStats {
    /// Aggregate I/O time of the *slowest* rank (the paper reports
    /// application-level I/O time, which is gated by the slowest rank).
    pub fn max_io_time(&self) -> Time {
        self.per_rank
            .iter()
            .map(|r| r.io_time)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total bytes moved by all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.bytes_written + r.bytes_read)
            .sum()
    }
}

/// A structural defect in an op program or its placement. These are
/// deterministic — the same program fails the same way on every attempt —
/// so campaign workers surface them as typed cell failures instead of
/// panics: a malformed *generated* program (e.g. sampled from a scenario
/// grammar) must land in the `CellOutcome` taxonomy, not burn the
/// panic-retry budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramFault {
    /// `placement.len() != programs.len()`.
    PlacementMismatch {
        /// Number of placement entries supplied.
        placements: usize,
        /// Number of rank programs supplied.
        ranks: usize,
    },
    /// A placement entry references a node the machine does not have.
    UnknownNode {
        /// The rank whose placement is invalid.
        rank: usize,
        /// The referenced node.
        node: usize,
        /// How many nodes the machine has.
        nodes: usize,
    },
    /// A message op targets a rank outside the world.
    UnknownRank {
        /// The op kind ("send", "recv", ...).
        op: &'static str,
        /// The rank executing the op.
        rank: usize,
        /// The out-of-range target rank (or root).
        target: usize,
        /// World size.
        world: usize,
    },
    /// The event queue drained with at least one rank still blocked.
    Deadlock {
        /// The first unfinished rank.
        rank: usize,
        /// What it was blocked on.
        waiting: String,
    },
}

impl std::fmt::Display for ProgramFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramFault::PlacementMismatch { placements, ranks } => write!(
                f,
                "one placement entry per rank: {placements} placement entries for {ranks} ranks"
            ),
            ProgramFault::UnknownNode { rank, node, nodes } => write!(
                f,
                "placement references unknown node: rank {rank} on node {node}, machine has {nodes}"
            ),
            ProgramFault::UnknownRank {
                op,
                rank,
                target,
                world,
            } => write!(
                f,
                "{op} on rank {rank} targets unknown rank {target} (world size {world})"
            ),
            ProgramFault::Deadlock { rank, waiting } => write!(
                f,
                "deadlock in the program: rank {rank} never finished (blocked on {waiting})"
            ),
        }
    }
}

impl std::error::Error for ProgramFault {}

/// Why a supervised run did not complete.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// The watchdog stopped the run (deadline, budget, or stall limit).
    Aborted(Abort),
    /// The program itself is invalid; retrying cannot succeed.
    Invalid(ProgramFault),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Aborted(a) => a.fmt(f),
            RunError::Invalid(p) => p.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Abort> for RunError {
    fn from(a: Abort) -> Self {
        RunError::Aborted(a)
    }
}

/// What a parked rank is waiting for (to finalize its trace on resume).
#[derive(Clone, Copy, Debug)]
enum ResumeAction {
    Recv {
        src: Rank,
        start: Time,
    },
    WaitAll {
        start: Time,
    },
    Barrier {
        start: Time,
    },
    Bcast {
        root: Rank,
        bytes: u64,
        start: Time,
    },
    Allreduce {
        bytes: u64,
        start: Time,
    },
    CollWrite {
        file: FileId,
        offset: u64,
        len: u64,
        start: Time,
    },
    CollRead {
        file: FileId,
        offset: u64,
        len: u64,
        start: Time,
    },
}

struct RankCtx {
    stream: Box<dyn OpStream>,
    node: NodeId,
    t: Time,
    stats: RankStats,
    resume: Option<ResumeAction>,
    done: bool,
    /// Latest completion among resolved nonblocking requests.
    nb_complete: Time,
    /// Posted-but-unmatched nonblocking receives.
    nb_pending: usize,
}

#[derive(Default)]
struct CollState {
    /// (rank, arrival, offset, len) in arrival order.
    arrivals: Vec<(Rank, Time, u64, u64)>,
}

/// The MPI runtime.
pub struct Runtime {
    params: RuntimeParams,
    collapse: bool,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new(RuntimeParams::default())
    }
}

impl Runtime {
    /// A runtime with the given parameters.
    pub fn new(params: RuntimeParams) -> Runtime {
        Runtime {
            params,
            collapse: true,
        }
    }

    /// Enables or disables the collapsed execution of symmetric rank
    /// cohorts (see [`crate::collapse`]; on by default). Collapse only
    /// ever engages when machine, programs and placement all prove
    /// symmetric, so disabling it changes speed, never results — the
    /// bench harness uses this toggle to measure exactly that speedup.
    pub fn with_collapse(mut self, enabled: bool) -> Runtime {
        self.collapse = enabled;
        self
    }

    /// Executes `programs` (one per rank) placed on `placement`
    /// (rank → node) against `machine`, reporting every primitive to
    /// `sink`. Returns per-rank statistics.
    pub fn run(
        &self,
        machine: &mut dyn Machine,
        placement: &[NodeId],
        programs: Vec<Box<dyn OpStream>>,
        sink: &mut dyn TraceSink,
    ) -> RunStats {
        match self.run_supervised(machine, placement, programs, sink, None) {
            Ok(stats) => stats,
            Err(RunError::Aborted(abort)) => {
                unreachable!("run without a watchdog cannot abort: {abort}")
            }
            // In the unsupervised entry point an invalid program is a caller
            // bug, reported by panic as it always was; supervised campaign
            // workers get the typed error instead.
            Err(RunError::Invalid(fault)) => panic!("{fault}"),
        }
    }

    /// Like [`Runtime::run`], but every executed primitive is reported to
    /// `watchdog`; the run aborts with the watchdog's [`Abort`] the moment
    /// a simulated-time deadline, wall-clock budget, or livelock stall
    /// limit is exceeded. The watchdog is consulted both between events and
    /// inside the zero-cost inline stepping loop, so a rank spinning on
    /// free operations (a livelock) is caught even though it never returns
    /// to the event queue.
    pub fn run_supervised(
        &self,
        machine: &mut dyn Machine,
        placement: &[NodeId],
        programs: Vec<Box<dyn OpStream>>,
        sink: &mut dyn TraceSink,
        watchdog: Option<Watchdog>,
    ) -> Result<RunStats, RunError> {
        if placement.len() != programs.len() {
            return Err(RunError::Invalid(ProgramFault::PlacementMismatch {
                placements: placement.len(),
                ranks: programs.len(),
            }));
        }
        for (rank, &n) in placement.iter().enumerate() {
            if n >= machine.nodes() {
                return Err(RunError::Invalid(ProgramFault::UnknownNode {
                    rank,
                    node: n,
                    nodes: machine.nodes(),
                }));
            }
        }
        if self.collapse {
            let signatures: Vec<_> = programs.iter().map(|p| p.signature()).collect();
            if let Some(cohorts) = crate::collapse::plan(&*machine, placement, &signatures) {
                // Signed streams attest collapse-safety (no p2p, no rank
                // divergence), so the collapsed executor can only abort.
                return crate::collapse::run(
                    &self.params,
                    machine,
                    placement,
                    programs,
                    cohorts,
                    sink,
                    watchdog,
                )
                .map_err(RunError::Aborted);
            }
        }
        let world = programs.len();
        let mut exec = Exec {
            params: self.params.clone(),
            machine,
            placement,
            sink,
            world,
            ranks: programs
                .into_iter()
                .zip(placement)
                .map(|(stream, &node)| RankCtx {
                    stream,
                    node,
                    t: Time::ZERO,
                    stats: RankStats::default(),
                    resume: None,
                    done: false,
                    nb_complete: Time::ZERO,
                    nb_pending: 0,
                })
                .collect(),
            queue: EventQueue::new(),
            sends: HashMap::new(),
            recvs: HashMap::new(),
            irecvs: HashMap::new(),
            barrier: Vec::new(),
            bcast: Vec::new(),
            allreduce: Vec::new(),
            colls: HashMap::new(),
            watchdog,
            abort: None,
            fatal: None,
        };
        for r in 0..world {
            exec.queue.schedule(Time::ZERO, r);
        }
        while let Some((t, rank)) = exec.queue.pop() {
            if exec.fatal.is_some() || !exec.guard(t) {
                break;
            }
            exec.resume(rank, t);
        }
        if let Some(fault) = exec.fatal {
            return Err(RunError::Invalid(fault));
        }
        if let Some(abort) = exec.abort {
            return Err(RunError::Aborted(abort));
        }
        for (rank, ctx) in exec.ranks.iter().enumerate() {
            if !ctx.done {
                return Err(RunError::Invalid(ProgramFault::Deadlock {
                    rank,
                    waiting: format!("{:?}", ctx.resume),
                }));
            }
        }
        let mut stats = RunStats {
            wall_time: Time::ZERO,
            per_rank: Vec::with_capacity(world),
        };
        for ctx in &mut exec.ranks {
            ctx.stats.end = ctx.t;
            stats.wall_time = stats.wall_time.max(ctx.t);
            stats.per_rank.push(std::mem::take(&mut ctx.stats));
        }
        Ok(stats)
    }
}

struct Exec<'a> {
    params: RuntimeParams,
    machine: &'a mut dyn Machine,
    placement: &'a [NodeId],
    sink: &'a mut dyn TraceSink,
    world: usize,
    ranks: Vec<RankCtx>,
    queue: EventQueue<Rank>,
    /// Unmatched sends: (src, dst, tag) → (delivery, bytes).
    sends: HashMap<(Rank, Rank, u32), VecDeque<(Time, u64)>>,
    /// Parked receivers: (src, dst, tag) → receiver ranks.
    recvs: HashMap<(Rank, Rank, u32), VecDeque<Rank>>,
    /// Posted nonblocking receives awaiting a matching send.
    irecvs: HashMap<(Rank, Rank, u32), VecDeque<Rank>>,
    /// Barrier arrivals.
    barrier: Vec<(Rank, Time)>,
    /// Broadcast arrivals (root, bytes fixed by the first arrival).
    bcast: Vec<(Rank, Time)>,
    /// All-reduce arrivals.
    allreduce: Vec<(Rank, Time)>,
    /// Collective I/O arrivals per (file, is_write).
    colls: HashMap<(u64, bool), CollState>,
    /// Supervision: observes every executed primitive.
    watchdog: Option<Watchdog>,
    /// Set once the watchdog demands an abort; stops all further stepping.
    abort: Option<Abort>,
    /// Set when an op exposes a structural program defect (e.g. a message
    /// to an unknown rank); stops all further stepping, reported as
    /// [`RunError::Invalid`].
    fatal: Option<ProgramFault>,
}

impl Exec<'_> {
    /// Records a program fault and parks the offending rank; the main loop
    /// stops before dispatching any further event.
    fn fail(&mut self, fault: ProgramFault) -> bool {
        self.fatal = Some(fault);
        false
    }
    /// Reports progress at simulated instant `now`; `false` means the run
    /// has been aborted and no more work may execute.
    fn guard(&mut self, now: Time) -> bool {
        if self.abort.is_some() {
            return false;
        }
        if let Some(w) = self.watchdog.as_mut() {
            if let Err(a) = w.observe(now) {
                self.abort = Some(a);
                return false;
            }
        }
        true
    }

    fn emit(&mut self, rank: Rank, start: Time, end: Time, kind: TraceKind) {
        simcore::obs::emit(|| simcore::obs::ObsEvent::MpiOp {
            rank,
            label: kind.label(),
            start,
            end,
            bytes: kind.payload_bytes(),
            io: kind.is_io_data(),
        });
        self.sink.record(TraceEvent {
            rank,
            start,
            end,
            kind,
        });
    }

    /// Wakes `rank` at `t`, finalizing whatever it was parked on, then
    /// continues stepping it.
    fn resume(&mut self, rank: Rank, t: Time) {
        {
            let action = self.ranks[rank].resume.take();
            let ctx = &mut self.ranks[rank];
            ctx.t = ctx.t.max(t);
            if let Some(action) = action {
                let end = ctx.t;
                match action {
                    ResumeAction::Recv { src, start } => {
                        ctx.stats.comm_time += end - start;
                        self.emit(rank, start, end, TraceKind::Recv { src });
                    }
                    ResumeAction::WaitAll { start } => {
                        ctx.stats.comm_time += end - start;
                        ctx.nb_complete = Time::ZERO;
                        self.emit(rank, start, end, TraceKind::Wait);
                    }
                    ResumeAction::Barrier { start } => {
                        ctx.stats.comm_time += end - start;
                        self.emit(rank, start, end, TraceKind::Barrier);
                    }
                    ResumeAction::Bcast { root, bytes, start } => {
                        ctx.stats.comm_time += end - start;
                        self.emit(rank, start, end, TraceKind::Bcast { root, bytes });
                    }
                    ResumeAction::Allreduce { bytes, start } => {
                        ctx.stats.comm_time += end - start;
                        self.emit(rank, start, end, TraceKind::Allreduce { bytes });
                    }
                    ResumeAction::CollWrite {
                        file,
                        offset,
                        len,
                        start,
                    } => {
                        ctx.stats.io_time += end - start;
                        ctx.stats.bytes_written += len;
                        ctx.stats.io_ops += 1;
                        self.emit(
                            rank,
                            start,
                            end,
                            TraceKind::Write {
                                file,
                                offset,
                                len,
                                collective: true,
                            },
                        );
                    }
                    ResumeAction::CollRead {
                        file,
                        offset,
                        len,
                        start,
                    } => {
                        ctx.stats.io_time += end - start;
                        ctx.stats.bytes_read += len;
                        ctx.stats.io_ops += 1;
                        self.emit(
                            rank,
                            start,
                            end,
                            TraceKind::Read {
                                file,
                                offset,
                                len,
                                collective: true,
                            },
                        );
                    }
                }
            }
        }
        self.step(rank);
    }

    /// Runs `rank` until it parks, yields, or finishes.
    ///
    /// A rank *yields* back to the event queue whenever an op advanced its
    /// clock: machine state side-effects (file truncation, cache
    /// invalidation, resource submissions) must happen in simulation-time
    /// order across ranks, not in whole-program execution order. Ops that
    /// take no simulated time run inline.
    fn step(&mut self, rank: Rank) {
        loop {
            // Zero-cost ops run inline without returning to the event
            // queue, so the watchdog must also be consulted here or a
            // livelocked rank would spin forever.
            if !self.guard(self.ranks[rank].t) {
                return;
            }
            let op = match self.ranks[rank].stream.next_op() {
                Some(op) => op,
                None => {
                    self.ranks[rank].done = true;
                    return;
                }
            };
            let before = self.ranks[rank].t;
            if !self.execute(rank, op) {
                return; // parked
            }
            let after = self.ranks[rank].t;
            if after > before {
                self.queue.schedule(after.max(self.queue.now()), rank);
                return; // yielded
            }
        }
    }

    /// Executes one op for `rank`; returns `false` if the rank parked.
    fn execute(&mut self, rank: Rank, op: MpiOp) -> bool {
        let node = self.ranks[rank].node;
        let start = self.ranks[rank].t;
        match op {
            MpiOp::Compute(d) => {
                let ctx = &mut self.ranks[rank];
                ctx.t += d;
                ctx.stats.compute_time += d;
                self.emit(rank, start, start + d, TraceKind::Compute);
            }
            MpiOp::Marker(id) => {
                self.emit(rank, start, start, TraceKind::Marker(id));
            }
            MpiOp::Send { dst, bytes, tag } => {
                if dst >= self.world {
                    return self.fail(ProgramFault::UnknownRank {
                        op: "send",
                        rank,
                        target: dst,
                        world: self.world,
                    });
                }
                let delivery = self
                    .machine
                    .mpi_send(start, node, self.placement[dst], bytes);
                let t_cont = if bytes <= self.params.eager_threshold {
                    start + self.params.send_overhead
                } else {
                    delivery
                };
                {
                    let ctx = &mut self.ranks[rank];
                    ctx.t = t_cont;
                    ctx.stats.comm_time += t_cont - start;
                }
                self.emit(rank, start, t_cont, TraceKind::Send { dst, bytes });
                self.deliver(rank, dst, tag, delivery, bytes);
            }
            MpiOp::Isend { dst, bytes, tag } => {
                if dst >= self.world {
                    return self.fail(ProgramFault::UnknownRank {
                        op: "isend",
                        rank,
                        target: dst,
                        world: self.world,
                    });
                }
                let delivery = self
                    .machine
                    .mpi_send(start, node, self.placement[dst], bytes);
                // Nonblocking: the sender continues immediately; buffer
                // completion (delivery) is what WaitAll observes.
                let t_cont = start + self.params.send_overhead;
                {
                    let ctx = &mut self.ranks[rank];
                    ctx.t = t_cont;
                    ctx.stats.comm_time += t_cont - start;
                    ctx.nb_complete = ctx.nb_complete.max(delivery);
                }
                self.emit(rank, start, t_cont, TraceKind::Send { dst, bytes });
                self.deliver(rank, dst, tag, delivery, bytes);
            }
            MpiOp::Irecv { src, tag } => {
                if src >= self.world {
                    return self.fail(ProgramFault::UnknownRank {
                        op: "irecv",
                        rank,
                        target: src,
                        world: self.world,
                    });
                }
                let key = (src, rank, tag);
                if let Some((delivery, _bytes)) =
                    self.sends.get_mut(&key).and_then(|q| q.pop_front())
                {
                    let ctx = &mut self.ranks[rank];
                    ctx.nb_complete = ctx.nb_complete.max(delivery);
                } else {
                    self.irecvs.entry(key).or_default().push_back(rank);
                    self.ranks[rank].nb_pending += 1;
                }
                // Posting costs nothing observable; no trace event until
                // the WaitAll that completes it.
            }
            MpiOp::WaitAll => {
                if self.ranks[rank].nb_pending == 0 {
                    let end = {
                        let ctx = &mut self.ranks[rank];
                        let end = ctx.t.max(ctx.nb_complete) + self.params.recv_overhead;
                        ctx.stats.comm_time += end - start;
                        ctx.t = end;
                        ctx.nb_complete = Time::ZERO;
                        end
                    };
                    self.emit(rank, start, end, TraceKind::Wait);
                } else {
                    self.ranks[rank].resume = Some(ResumeAction::WaitAll { start });
                    return false;
                }
            }
            MpiOp::Recv { src, tag } => {
                if src >= self.world {
                    return self.fail(ProgramFault::UnknownRank {
                        op: "recv",
                        rank,
                        target: src,
                        world: self.world,
                    });
                }
                let key = (src, rank, tag);
                if let Some((delivery, _bytes)) =
                    self.sends.get_mut(&key).and_then(|q| q.pop_front())
                {
                    let end = delivery.max(start) + self.params.recv_overhead;
                    let ctx = &mut self.ranks[rank];
                    ctx.t = end;
                    ctx.stats.comm_time += end - start;
                    self.emit(rank, start, end, TraceKind::Recv { src });
                } else {
                    self.recvs.entry(key).or_default().push_back(rank);
                    self.ranks[rank].resume = Some(ResumeAction::Recv { src, start });
                    return false;
                }
            }
            MpiOp::Barrier => {
                self.barrier.push((rank, start));
                self.ranks[rank].resume = Some(ResumeAction::Barrier { start });
                if self.barrier.len() == self.world {
                    let hops = (self.world.max(2) as f64).log2().ceil() as u64;
                    let latest = self
                        .barrier
                        .iter()
                        .map(|&(_, t)| t)
                        .max()
                        .expect("nonempty barrier");
                    let release = latest + self.params.barrier_hop * hops;
                    for (r, _) in std::mem::take(&mut self.barrier) {
                        self.queue.schedule(release.max(self.queue.now()), r);
                    }
                }
                return false;
            }
            MpiOp::Bcast { root, bytes } => {
                if root >= self.world {
                    return self.fail(ProgramFault::UnknownRank {
                        op: "bcast",
                        rank,
                        target: root,
                        world: self.world,
                    });
                }
                self.bcast.push((rank, start));
                self.ranks[rank].resume = Some(ResumeAction::Bcast { root, bytes, start });
                if self.bcast.len() == self.world {
                    let arrivals = std::mem::take(&mut self.bcast);
                    self.run_bcast(root, bytes, arrivals);
                }
                return false;
            }
            MpiOp::Allreduce { bytes } => {
                self.allreduce.push((rank, start));
                self.ranks[rank].resume = Some(ResumeAction::Allreduce { bytes, start });
                if self.allreduce.len() == self.world {
                    let arrivals = std::mem::take(&mut self.allreduce);
                    self.run_allreduce(bytes, arrivals);
                }
                return false;
            }
            MpiOp::FileOpen { file, create } => {
                let end = self.machine.io_open(start, node, file, create);
                let ctx = &mut self.ranks[rank];
                ctx.t = end;
                ctx.stats.meta_time += end - start;
                self.emit(rank, start, end, TraceKind::Open { file, create });
            }
            MpiOp::FileClose { file } => {
                let end = self.machine.io_close(start, node, file);
                let ctx = &mut self.ranks[rank];
                ctx.t = end;
                ctx.stats.meta_time += end - start;
                self.emit(rank, start, end, TraceKind::Close { file });
            }
            MpiOp::FileSync { file } => {
                let end = self.machine.io_sync(start, node, file);
                let ctx = &mut self.ranks[rank];
                ctx.t = end;
                ctx.stats.meta_time += end - start;
                self.emit(rank, start, end, TraceKind::Sync { file });
            }
            MpiOp::Meta { verb, dir, file } => {
                let end = self.machine.io_meta(start, node, verb, dir, file);
                let ctx = &mut self.ranks[rank];
                ctx.t = end;
                ctx.stats.meta_time += end - start;
                ctx.stats.meta_ops += 1;
                self.emit(rank, start, end, TraceKind::Meta { verb, dir, file });
            }
            MpiOp::WriteAt { file, offset, len } => {
                let end = self.machine.io_write(start, node, file, offset, len);
                let ctx = &mut self.ranks[rank];
                ctx.t = end;
                ctx.stats.io_time += end - start;
                ctx.stats.bytes_written += len;
                ctx.stats.io_ops += 1;
                self.emit(
                    rank,
                    start,
                    end,
                    TraceKind::Write {
                        file,
                        offset,
                        len,
                        collective: false,
                    },
                );
            }
            MpiOp::ReadAt { file, offset, len } => {
                let end = self.machine.io_read(start, node, file, offset, len);
                let ctx = &mut self.ranks[rank];
                ctx.t = end;
                ctx.stats.io_time += end - start;
                ctx.stats.bytes_read += len;
                ctx.stats.io_ops += 1;
                self.emit(
                    rank,
                    start,
                    end,
                    TraceKind::Read {
                        file,
                        offset,
                        len,
                        collective: false,
                    },
                );
            }
            MpiOp::WriteAtAll { file, offset, len } => {
                self.ranks[rank].resume = Some(ResumeAction::CollWrite {
                    file,
                    offset,
                    len,
                    start,
                });
                self.collective_arrive(file, true, rank, start, offset, len);
                return false;
            }
            MpiOp::ReadAtAll { file, offset, len } => {
                self.ranks[rank].resume = Some(ResumeAction::CollRead {
                    file,
                    offset,
                    len,
                    start,
                });
                self.collective_arrive(file, false, rank, start, offset, len);
                return false;
            }
        }
        true
    }

    /// Routes a delivered message to whoever is waiting for it (a parked
    /// blocking receiver, a posted nonblocking receive) or queues it.
    fn deliver(&mut self, src: Rank, dst: Rank, tag: u32, delivery: Time, bytes: u64) {
        let key = (src, dst, tag);
        if let Some(receiver) = self.recvs.get_mut(&key).and_then(|q| q.pop_front()) {
            let wake = delivery.max(self.ranks[receiver].t) + self.params.recv_overhead;
            self.queue.schedule(wake.max(self.queue.now()), receiver);
            return;
        }
        if let Some(receiver) = self.irecvs.get_mut(&key).and_then(|q| q.pop_front()) {
            let ctx = &mut self.ranks[receiver];
            ctx.nb_complete = ctx.nb_complete.max(delivery);
            ctx.nb_pending -= 1;
            if ctx.nb_pending == 0 && matches!(ctx.resume, Some(ResumeAction::WaitAll { .. })) {
                let wake = ctx.t.max(ctx.nb_complete) + self.params.recv_overhead;
                self.queue.schedule(wake.max(self.queue.now()), receiver);
            }
            return;
        }
        self.sends
            .entry(key)
            .or_default()
            .push_back((delivery, bytes));
    }

    /// Binomial-tree broadcast: virtual rank 0 is the root; in round `k`
    /// vranks `< 2^k` forward to vrank `+2^k`. Each rank is released when
    /// its copy of the data arrives.
    fn run_bcast(&mut self, root: Rank, bytes: u64, arrivals: Vec<(Rank, Time)>) {
        let p = self.world;
        let mut arrival_of = vec![Time::ZERO; p];
        for &(r, t) in &arrivals {
            arrival_of[r] = t;
        }
        let vrank = |r: Rank| (r + p - root) % p;
        let real = |v: usize| (v + root) % p;
        let mut ready = vec![Time::MAX; p];
        ready[0] = arrival_of[root];
        let mut k = 1usize;
        while k < p {
            for i in 0..k.min(p) {
                let j = i + k;
                if j < p {
                    let src = real(i);
                    let dst = real(j);
                    // The sender forwards once it has the data *and* the
                    // receiver has at least posted the collective.
                    let go = ready[i].max(arrival_of[src]);
                    let delivery =
                        self.machine
                            .mpi_send(go, self.placement[src], self.placement[dst], bytes);
                    ready[j] = delivery.max(arrival_of[dst]);
                }
            }
            k *= 2;
        }
        for (v, &t) in ready.iter().enumerate() {
            let r = real(v);
            let wake = t + self.params.recv_overhead;
            self.queue.schedule(wake.max(self.queue.now()), r);
        }
        let _ = vrank;
    }

    /// All-reduce as binomial reduce-to-rank-0 followed by broadcast.
    fn run_allreduce(&mut self, bytes: u64, arrivals: Vec<(Rank, Time)>) {
        let p = self.world;
        let mut ready = vec![Time::ZERO; p];
        for &(r, t) in &arrivals {
            ready[r] = t;
        }
        // Reduce: in round k, rank i (i % 2k == 0) receives from i + k.
        let mut k = 1usize;
        while k < p {
            let mut i = 0;
            while i + k < p {
                let delivery = self.machine.mpi_send(
                    ready[i + k],
                    self.placement[i + k],
                    self.placement[i],
                    bytes,
                );
                ready[i] = ready[i].max(delivery);
                i += 2 * k;
            }
            k *= 2;
        }
        // Broadcast the reduced value back down the same tree.
        k /= 2;
        while k >= 1 {
            let mut i = 0;
            while i + k < p {
                let delivery = self.machine.mpi_send(
                    ready[i],
                    self.placement[i],
                    self.placement[i + k],
                    bytes,
                );
                ready[i + k] = ready[i + k].max(delivery);
                i += 2 * k;
            }
            if k == 1 {
                break;
            }
            k /= 2;
        }
        for (r, &t) in ready.iter().enumerate() {
            let wake = t + self.params.recv_overhead;
            self.queue.schedule(wake.max(self.queue.now()), r);
        }
    }

    /// Registers a collective arrival; runs the two-phase exchange when the
    /// whole world has arrived.
    fn collective_arrive(
        &mut self,
        file: FileId,
        is_write: bool,
        rank: Rank,
        t: Time,
        offset: u64,
        len: u64,
    ) {
        let state = self.colls.entry((file.0, is_write)).or_default();
        state.arrivals.push((rank, t, offset, len));
        if state.arrivals.len() < self.world {
            return;
        }
        let state = self
            .colls
            .remove(&(file.0, is_write))
            .expect("state just inserted");
        if is_write {
            self.collective_write(file, state);
        } else {
            self.collective_read(file, state);
        }
    }

    /// Aggregator file domains: one aggregator per distinct node, contiguous
    /// chunks of the accessed region aligned to `cb_align`.
    fn aggregators(&self, lo: u64, hi: u64) -> Vec<(NodeId, u64, u64)> {
        let mut agg_nodes: Vec<NodeId> = Vec::new();
        for &n in self.placement {
            if !agg_nodes.contains(&n) {
                agg_nodes.push(n);
            }
        }
        let total = hi - lo;
        let a = agg_nodes.len() as u64;
        let chunk = total.div_ceil(a).div_ceil(self.params.cb_align) * self.params.cb_align;
        let mut out = Vec::new();
        for (i, &node) in agg_nodes.iter().enumerate() {
            let from = lo + i as u64 * chunk;
            let to = (from + chunk).min(hi);
            if from < to {
                out.push((node, from, to));
            }
        }
        out
    }

    /// Two-phase collective write: shuffle to aggregators, then large
    /// contiguous writes; all ranks released when the slowest domain is
    /// written.
    fn collective_write(&mut self, file: FileId, state: CollState) {
        let t0 = state
            .arrivals
            .iter()
            .map(|&(_, t, _, _)| t)
            .max()
            .expect("nonempty collective");
        let lo = state
            .arrivals
            .iter()
            .map(|&(_, _, o, _)| o)
            .min()
            .expect("nonempty");
        let hi = state
            .arrivals
            .iter()
            .map(|&(_, _, o, l)| o + l)
            .max()
            .expect("nonempty");
        let domains = self.aggregators(lo, hi);

        let mut release = t0;
        for &(agg_node, from, to) in &domains {
            // Phase 1: every rank ships its overlap with this domain.
            let mut data_ready = t0;
            for &(r, _, o, l) in &state.arrivals {
                let ov_from = o.max(from);
                let ov_to = (o + l).min(to);
                if ov_from < ov_to {
                    let src_node = self.placement[r];
                    let d = self
                        .machine
                        .mpi_send(t0, src_node, agg_node, ov_to - ov_from);
                    data_ready = data_ready.max(d);
                }
            }
            // Phase 2: one large contiguous write per aggregator.
            let done = self
                .machine
                .io_write(data_ready, agg_node, file, from, to - from);
            release = release.max(done);
        }
        // Completion notification.
        let release = release + self.params.barrier_hop;
        for &(r, _, _, _) in &state.arrivals {
            self.queue.schedule(release.max(self.queue.now()), r);
        }
    }

    /// Two-phase collective read: aggregators read their domains, then
    /// scatter; each rank is released when its own data arrives.
    fn collective_read(&mut self, file: FileId, state: CollState) {
        let t0 = state
            .arrivals
            .iter()
            .map(|&(_, t, _, _)| t)
            .max()
            .expect("nonempty collective");
        let lo = state
            .arrivals
            .iter()
            .map(|&(_, _, o, _)| o)
            .min()
            .expect("nonempty");
        let hi = state
            .arrivals
            .iter()
            .map(|&(_, _, o, l)| o + l)
            .max()
            .expect("nonempty");
        let domains = self.aggregators(lo, hi);

        // Aggregators read their domains in parallel.
        let mut ready: Vec<(u64, u64, NodeId, Time)> = Vec::with_capacity(domains.len());
        for &(agg_node, from, to) in &domains {
            let t = self.machine.io_read(t0, agg_node, file, from, to - from);
            ready.push((from, to, agg_node, t));
        }
        // Scatter each rank's pieces back.
        for &(r, _, o, l) in &state.arrivals {
            let mut arrive = t0;
            for &(from, to, agg_node, t_ready) in &ready {
                let ov_from = o.max(from);
                let ov_to = (o + l).min(to);
                if ov_from < ov_to {
                    let d = self.machine.mpi_send(
                        t_ready,
                        agg_node,
                        self.placement[r],
                        ov_to - ov_from,
                    );
                    arrive = arrive.max(d);
                }
            }
            self.queue.schedule(
                (arrive + self.params.recv_overhead).max(self.queue.now()),
                r,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::FixedMachine;
    use crate::op::VecStream;
    use crate::trace::VecSink;
    use simcore::MIB;

    fn boxed(ops: Vec<MpiOp>) -> Box<dyn OpStream> {
        Box::new(VecStream::new(ops))
    }

    fn run(placement: &[NodeId], programs: Vec<Vec<MpiOp>>) -> (RunStats, Vec<TraceEvent>) {
        let mut machine = FixedMachine::new(placement.iter().max().unwrap() + 1);
        let mut sink = VecSink::new();
        let rt = Runtime::default();
        let stats = rt.run(
            &mut machine,
            placement,
            programs.into_iter().map(boxed).collect(),
            &mut sink,
        );
        (stats, sink.events)
    }

    const F: FileId = FileId(1);

    #[test]
    fn compute_advances_time() {
        let (stats, events) = run(&[0], vec![vec![MpiOp::Compute(Time::from_secs(2))]]);
        assert_eq!(stats.wall_time, Time::from_secs(2));
        assert_eq!(stats.per_rank[0].compute_time, Time::from_secs(2));
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn recv_waits_for_send() {
        let (stats, _) = run(
            &[0, 1],
            vec![
                vec![
                    MpiOp::Compute(Time::from_secs(1)),
                    MpiOp::Send {
                        dst: 1,
                        bytes: 100,
                        tag: 0,
                    },
                ],
                vec![MpiOp::Recv { src: 0, tag: 0 }],
            ],
        );
        // Receiver had to wait ~1s for the sender.
        assert!(stats.per_rank[1].end >= Time::from_secs(1));
        assert!(stats.per_rank[1].comm_time >= Time::from_secs(1));
    }

    #[test]
    fn send_matches_already_posted_recv_and_vice_versa() {
        // Case A: recv posted first (tested above). Case B: send first.
        let (stats, _) = run(
            &[0, 1],
            vec![
                vec![MpiOp::Send {
                    dst: 1,
                    bytes: 100,
                    tag: 5,
                }],
                vec![
                    MpiOp::Compute(Time::from_secs(1)),
                    MpiOp::Recv { src: 0, tag: 5 },
                ],
            ],
        );
        // Message was already there; recv completes almost immediately.
        let end = stats.per_rank[1].end;
        assert!(end < Time::from_millis(1001), "recv end {end:?}");
    }

    #[test]
    fn eager_send_does_not_block_sender() {
        let (stats, _) = run(
            &[0, 1],
            vec![
                vec![MpiOp::Send {
                    dst: 1,
                    bytes: 1024, // below eager threshold
                    tag: 0,
                }],
                vec![
                    MpiOp::Compute(Time::from_secs(5)),
                    MpiOp::Recv { src: 0, tag: 0 },
                ],
            ],
        );
        assert!(
            stats.per_rank[0].end < Time::from_millis(1),
            "eager sender finished at {:?}",
            stats.per_rank[0].end
        );
    }

    #[test]
    fn large_send_blocks_until_delivery() {
        let (stats, _) = run(
            &[0, 1],
            vec![
                vec![MpiOp::Send {
                    dst: 1,
                    bytes: MIB, // above eager threshold
                    tag: 0,
                }],
                vec![MpiOp::Recv { src: 0, tag: 0 }],
            ],
        );
        // FixedMachine delivery cost is 100us.
        assert_eq!(stats.per_rank[0].end, Time::from_micros(100));
    }

    #[test]
    fn tags_keep_messages_apart() {
        let (_, events) = run(
            &[0, 1],
            vec![
                vec![
                    MpiOp::Send {
                        dst: 1,
                        bytes: 10,
                        tag: 1,
                    },
                    MpiOp::Send {
                        dst: 1,
                        bytes: 10,
                        tag: 2,
                    },
                ],
                vec![
                    // Receive in reverse tag order: must still match.
                    MpiOp::Recv { src: 0, tag: 2 },
                    MpiOp::Recv { src: 0, tag: 1 },
                ],
            ],
        );
        let recvs = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Recv { .. }))
            .count();
        assert_eq!(recvs, 2);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let (stats, _) = run(
            &[0, 1, 2],
            vec![
                vec![MpiOp::Compute(Time::from_secs(3)), MpiOp::Barrier],
                vec![MpiOp::Barrier],
                vec![MpiOp::Compute(Time::from_secs(1)), MpiOp::Barrier],
            ],
        );
        for r in 0..3 {
            assert!(
                stats.per_rank[r].end >= Time::from_secs(3),
                "rank {r} left the barrier early at {:?}",
                stats.per_rank[r].end
            );
        }
        // Fast ranks accumulated the wait as comm time.
        assert!(stats.per_rank[1].comm_time >= Time::from_secs(3));
    }

    #[test]
    fn independent_io_counts_in_stats() {
        let (stats, events) = run(
            &[0],
            vec![vec![
                MpiOp::FileOpen {
                    file: F,
                    create: true,
                },
                MpiOp::WriteAt {
                    file: F,
                    offset: 0,
                    len: 1000,
                },
                MpiOp::ReadAt {
                    file: F,
                    offset: 0,
                    len: 500,
                },
                MpiOp::FileClose { file: F },
            ]],
        );
        let s = &stats.per_rank[0];
        assert_eq!(s.bytes_written, 1000);
        assert_eq!(s.bytes_read, 500);
        assert_eq!(s.io_ops, 2);
        assert!(s.io_time > Time::ZERO);
        assert!(s.meta_time > Time::ZERO);
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn metadata_ops_count_and_trace_as_meta() {
        use fs::MetaVerb;
        let dir = FileId(70);
        let (stats, events) = run(
            &[0],
            vec![vec![
                MpiOp::Meta {
                    verb: MetaVerb::Mkdir,
                    dir,
                    file: dir,
                },
                MpiOp::Meta {
                    verb: MetaVerb::Create,
                    dir,
                    file: F,
                },
                MpiOp::Meta {
                    verb: MetaVerb::Stat,
                    dir,
                    file: F,
                },
                MpiOp::Meta {
                    verb: MetaVerb::Unlink,
                    dir,
                    file: F,
                },
            ]],
        );
        let s = &stats.per_rank[0];
        assert_eq!(s.meta_ops, 4);
        assert_eq!(s.io_ops, 0);
        assert!(s.meta_time > Time::ZERO);
        assert_eq!(s.io_time, Time::ZERO);
        let labels: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec!["meta_mkdir", "meta_create", "meta_stat", "meta_unlink"]
        );
    }

    #[test]
    fn collective_write_releases_all_ranks_together() {
        let world = 4;
        let programs: Vec<Vec<MpiOp>> = (0..world)
            .map(|r| {
                vec![MpiOp::WriteAtAll {
                    file: F,
                    offset: (r as u64) * MIB,
                    len: MIB,
                }]
            })
            .collect();
        let (stats, events) = run(&[0, 0, 1, 1], programs);
        let ends: Vec<Time> = stats.per_rank.iter().map(|r| r.end).collect();
        assert!(
            ends.windows(2).all(|w| w[0] == w[1]),
            "ends differ: {ends:?}"
        );
        // Each rank records exactly one collective write of its own piece.
        let coll_writes = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::Write {
                        collective: true,
                        len,
                        ..
                    } if len == MIB
                )
            })
            .count();
        assert_eq!(coll_writes, world);
        assert_eq!(stats.total_bytes(), world as u64 * MIB);
    }

    #[test]
    fn collective_read_scatters_back() {
        let world = 4;
        let programs: Vec<Vec<MpiOp>> = (0..world)
            .map(|r| {
                vec![MpiOp::ReadAtAll {
                    file: F,
                    offset: (r as u64) * MIB,
                    len: MIB,
                }]
            })
            .collect();
        let (stats, _) = run(&[0, 1, 2, 3], programs);
        for r in 0..world {
            assert_eq!(stats.per_rank[r].bytes_read, MIB);
            assert!(stats.per_rank[r].io_time > Time::ZERO);
        }
    }

    #[test]
    fn collective_waits_for_slowest_rank() {
        let programs = vec![
            vec![
                MpiOp::Compute(Time::from_secs(2)),
                MpiOp::WriteAtAll {
                    file: F,
                    offset: 0,
                    len: 1000,
                },
            ],
            vec![MpiOp::WriteAtAll {
                file: F,
                offset: 1000,
                len: 1000,
            }],
        ];
        let (stats, _) = run(&[0, 1], programs);
        assert!(stats.per_rank[1].end >= Time::from_secs(2));
        // The fast rank's wait shows up as I/O time — exactly how an
        // application experiences collective I/O imbalance.
        assert!(stats.per_rank[1].io_time >= Time::from_secs(2));
    }

    #[test]
    fn isend_irecv_waitall_roundtrip() {
        // Classic BT-style exchange: both ranks post Irecv, Isend, WaitAll.
        let build = |_me: usize, other: usize| {
            vec![
                MpiOp::Irecv { src: other, tag: 7 },
                MpiOp::Isend {
                    dst: other,
                    bytes: 128 * 1024, // above eager: blocking Send would jam
                    tag: 7,
                },
                MpiOp::WaitAll,
                MpiOp::Compute(Time::from_millis(1)),
            ]
        };
        let (stats, events) = run(&[0, 1], vec![build(0, 1), build(1, 0)]);
        for r in 0..2 {
            // FixedMachine delivery = 100us; WaitAll must cover it.
            assert!(
                stats.per_rank[r].end >= Time::from_micros(100),
                "rank {r} finished before its message arrived"
            );
        }
        let waits = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Wait))
            .count();
        assert_eq!(waits, 2);
    }

    #[test]
    fn waitall_without_outstanding_requests_is_cheap() {
        let (stats, events) = run(&[0], vec![vec![MpiOp::WaitAll]]);
        assert!(stats.wall_time < Time::from_micros(10));
        assert!(events.iter().any(|e| matches!(e.kind, TraceKind::Wait)));
    }

    #[test]
    fn isend_does_not_block_even_for_large_messages() {
        let (stats, _) = run(
            &[0, 1],
            vec![
                vec![MpiOp::Isend {
                    dst: 1,
                    bytes: 64 * MIB,
                    tag: 0,
                }],
                vec![MpiOp::Recv { src: 0, tag: 0 }],
            ],
        );
        assert!(
            stats.per_rank[0].end < Time::from_micros(50),
            "isend blocked: {:?}",
            stats.per_rank[0].end
        );
    }

    #[test]
    fn irecv_posted_before_and_after_send_both_complete() {
        // Rank 1 posts Irecv before rank 0 sends; rank 2 posts after.
        let programs = vec![
            vec![
                MpiOp::Compute(Time::from_millis(5)),
                MpiOp::Isend {
                    dst: 1,
                    bytes: 10,
                    tag: 1,
                },
                MpiOp::Isend {
                    dst: 2,
                    bytes: 10,
                    tag: 2,
                },
                MpiOp::WaitAll,
            ],
            vec![MpiOp::Irecv { src: 0, tag: 1 }, MpiOp::WaitAll],
            vec![
                MpiOp::Compute(Time::from_millis(20)),
                MpiOp::Irecv { src: 0, tag: 2 },
                MpiOp::WaitAll,
            ],
        ];
        let (stats, _) = run(&[0, 1, 2], programs);
        assert!(stats.per_rank[1].end >= Time::from_millis(5));
        assert!(stats.per_rank[2].end >= Time::from_millis(20));
    }

    #[test]
    fn bcast_delivers_to_all_ranks_after_root_arrives() {
        let world = 8;
        let programs: Vec<Vec<MpiOp>> = (0..world)
            .map(|r| {
                let mut ops = Vec::new();
                if r == 3 {
                    ops.push(MpiOp::Compute(Time::from_secs(2))); // slow root
                }
                ops.push(MpiOp::Bcast {
                    root: 3,
                    bytes: 4096,
                });
                ops
            })
            .collect();
        let (stats, events) = run(&[0, 1, 0, 1, 0, 1, 0, 1], programs);
        for r in 0..world {
            assert!(
                stats.per_rank[r].end >= Time::from_secs(2),
                "rank {r} got the broadcast before the root had the data"
            );
            assert!(stats.per_rank[r].comm_time > Time::ZERO || r == 3);
        }
        let bcasts = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Bcast { root: 3, .. }))
            .count();
        assert_eq!(bcasts, world);
    }

    #[test]
    fn bcast_tree_beats_sequential_sends() {
        // With 8 ranks a binomial tree needs 3 rounds, not 7 sends in a row.
        let world = 8;
        let programs: Vec<Vec<MpiOp>> = (0..world)
            .map(|_| vec![MpiOp::Bcast { root: 0, bytes: 1 }])
            .collect();
        let placement: Vec<usize> = (0..world).collect();
        let mut machine = FixedMachine::new(world);
        let mut sink = VecSink::new();
        let stats = Runtime::default().run(
            &mut machine,
            &placement,
            programs.into_iter().map(boxed).collect(),
            &mut sink,
        );
        // FixedMachine delivery is 100us/hop; 3 rounds ≈ 300us ≪ 700us.
        assert!(
            stats.wall_time < Time::from_micros(500),
            "bcast took {:?}",
            stats.wall_time
        );
    }

    #[test]
    fn allreduce_synchronizes_and_costs_two_tree_traversals() {
        let world = 4;
        let programs: Vec<Vec<MpiOp>> = (0..world)
            .map(|r| {
                let mut ops = Vec::new();
                if r == 2 {
                    ops.push(MpiOp::Compute(Time::from_secs(1)));
                }
                ops.push(MpiOp::Allreduce { bytes: 8 });
                ops
            })
            .collect();
        let (stats, events) = run(&[0, 1, 2, 3], programs);
        for r in 0..world {
            assert!(
                stats.per_rank[r].end >= Time::from_secs(1),
                "rank {r} finished before the slowest contribution"
            );
        }
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, TraceKind::Allreduce { bytes: 8 }))
                .count(),
            world
        );
    }

    #[test]
    fn allreduce_works_for_non_power_of_two() {
        let world = 5;
        let programs: Vec<Vec<MpiOp>> = (0..world)
            .map(|_| vec![MpiOp::Allreduce { bytes: 64 }, MpiOp::Barrier])
            .collect();
        let (stats, _) = run(&[0, 1, 2, 3, 4], programs);
        assert!(stats.wall_time > Time::ZERO);
    }

    #[test]
    fn marker_has_no_cost_but_is_traced() {
        let (stats, events) = run(&[0], vec![vec![MpiOp::Marker(42)]]);
        assert_eq!(stats.wall_time, Time::ZERO);
        assert_eq!(events[0].kind, TraceKind::Marker(42));
    }

    #[test]
    fn pingpong_is_deterministic() {
        let build = || {
            vec![
                vec![
                    MpiOp::Send {
                        dst: 1,
                        bytes: 128 * 1024,
                        tag: 0,
                    },
                    MpiOp::Recv { src: 1, tag: 1 },
                    MpiOp::Send {
                        dst: 1,
                        bytes: 128 * 1024,
                        tag: 2,
                    },
                ],
                vec![
                    MpiOp::Recv { src: 0, tag: 0 },
                    MpiOp::Send {
                        dst: 0,
                        bytes: 128 * 1024,
                        tag: 1,
                    },
                    MpiOp::Recv { src: 0, tag: 2 },
                ],
            ]
        };
        let (a, _) = run(&[0, 1], build());
        let (b, _) = run(&[0, 1], build());
        assert_eq!(a.wall_time, b.wall_time);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unmatched_recv_is_reported_as_deadlock() {
        run(&[0], vec![vec![MpiOp::Recv { src: 0, tag: 9 }]]);
    }

    #[test]
    #[should_panic(expected = "one placement entry per rank")]
    fn placement_must_cover_ranks() {
        let mut machine = FixedMachine::new(1);
        let mut sink = VecSink::new();
        Runtime::default().run(&mut machine, &[0, 0], vec![boxed(vec![])], &mut sink);
    }

    use simcore::WatchdogSpec;

    /// A rank that forever yields zero-cost ops: the event loop spins
    /// without simulated time ever advancing.
    struct LivelockStream;

    impl OpStream for LivelockStream {
        fn next_op(&mut self) -> Option<MpiOp> {
            Some(MpiOp::Marker(0))
        }
    }

    /// A sink that drops everything (livelock tests would otherwise
    /// accumulate millions of trace events).
    struct NullSink;

    impl crate::trace::TraceSink for NullSink {
        fn record(&mut self, _event: TraceEvent) {}
    }

    #[test]
    fn supervised_run_matches_plain_run() {
        let programs = || {
            vec![
                vec![
                    MpiOp::Compute(Time::from_secs(1)),
                    MpiOp::Send {
                        dst: 1,
                        bytes: 100,
                        tag: 0,
                    },
                ],
                vec![MpiOp::Recv { src: 0, tag: 0 }],
            ]
        };
        let (plain, _) = run(&[0, 1], programs());
        let mut machine = FixedMachine::new(2);
        let mut sink = VecSink::new();
        let supervised = Runtime::default()
            .run_supervised(
                &mut machine,
                &[0, 1],
                programs().into_iter().map(boxed).collect(),
                &mut sink,
                Some(WatchdogSpec::sim_deadline(Time::from_secs(3600)).arm()),
            )
            .expect("healthy run must not abort");
        assert_eq!(plain.wall_time, supervised.wall_time);
        assert_eq!(plain.per_rank.len(), supervised.per_rank.len());
    }

    #[test]
    fn livelocked_rank_is_aborted_as_stalled() {
        let mut machine = FixedMachine::new(1);
        let mut sink = NullSink;
        let wd = WatchdogSpec::default().with_stall_limit(50_000).arm();
        let err = Runtime::default()
            .run_supervised(
                &mut machine,
                &[0],
                vec![Box::new(LivelockStream)],
                &mut sink,
                Some(wd),
            )
            .expect_err("livelock must abort");
        assert!(
            matches!(err, RunError::Aborted(simcore::Abort::Stalled { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn runaway_compute_is_aborted_at_the_sim_deadline() {
        let ops = vec![MpiOp::Compute(Time::from_secs(1)); 1000];
        let mut machine = FixedMachine::new(1);
        let mut sink = NullSink;
        let wd = WatchdogSpec::sim_deadline(Time::from_secs(5)).arm();
        let err = Runtime::default()
            .run_supervised(&mut machine, &[0], vec![boxed(ops)], &mut sink, Some(wd))
            .expect_err("runaway compute must abort");
        match err {
            RunError::Aborted(simcore::Abort::SimDeadline { deadline, now }) => {
                assert_eq!(deadline, Time::from_secs(5));
                assert!(now > deadline);
            }
            other => panic!("unexpected abort {other:?}"),
        }
    }

    /// Supervised entry point: structural program defects come back as
    /// typed [`RunError::Invalid`] values (never panics), so campaign
    /// workers can classify them without burning a panic-retry budget.
    fn run_checked(placement: &[NodeId], programs: Vec<Vec<MpiOp>>) -> Result<RunStats, RunError> {
        let mut machine = FixedMachine::new(placement.iter().max().map_or(1, |m| m + 1));
        let mut sink = VecSink::new();
        Runtime::default().run_supervised(
            &mut machine,
            placement,
            programs.into_iter().map(boxed).collect(),
            &mut sink,
            None,
        )
    }

    #[test]
    fn supervised_unmatched_recv_is_a_typed_deadlock() {
        let err = run_checked(&[0], vec![vec![MpiOp::Recv { src: 0, tag: 9 }]])
            .expect_err("deadlock must be reported");
        match err {
            RunError::Invalid(ProgramFault::Deadlock { rank: 0, .. }) => {}
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("deadlock"), "{err}");
    }

    #[test]
    fn supervised_placement_mismatch_is_typed() {
        let err = run_checked(&[0, 0], vec![vec![]]).expect_err("mismatch must be reported");
        assert_eq!(
            err,
            RunError::Invalid(ProgramFault::PlacementMismatch {
                placements: 2,
                ranks: 1
            })
        );
    }

    #[test]
    fn supervised_unknown_node_is_typed() {
        let mut machine = FixedMachine::new(1);
        let mut sink = VecSink::new();
        let err = Runtime::default()
            .run_supervised(&mut machine, &[7], vec![boxed(vec![])], &mut sink, None)
            .expect_err("unknown node must be reported");
        assert_eq!(
            err,
            RunError::Invalid(ProgramFault::UnknownNode {
                rank: 0,
                node: 7,
                nodes: 1
            })
        );
    }

    #[test]
    fn supervised_send_to_unknown_rank_is_typed() {
        let err = run_checked(
            &[0],
            vec![vec![MpiOp::Send {
                dst: 3,
                bytes: 1,
                tag: 0,
            }]],
        )
        .expect_err("unknown rank must be reported");
        match err {
            RunError::Invalid(ProgramFault::UnknownRank {
                op: "send",
                rank: 0,
                target: 3,
                world: 1,
            }) => {}
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn supervised_bcast_from_unknown_root_is_typed() {
        let err = run_checked(
            &[0, 0],
            vec![
                vec![MpiOp::Bcast { root: 5, bytes: 8 }],
                vec![MpiOp::Bcast { root: 5, bytes: 8 }],
            ],
        )
        .expect_err("unknown root must be reported");
        assert!(
            matches!(
                err,
                RunError::Invalid(ProgramFault::UnknownRank { op: "bcast", .. })
            ),
            "{err:?}"
        );
    }
}
