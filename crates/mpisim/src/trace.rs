//! Trace events — the PAS2P-IO substitute.
//!
//! The paper extends the PAS2P tracing tool with a preloaded
//! `libpas2p_io.so` that records every MPI-IO primitive together with the
//! computation/communication context. Here the runtime itself emits a
//! [`TraceEvent`] per primitive into a [`TraceSink`]; the methodology crate
//! provides aggregating sinks that build application characterizations
//! without materializing multi-million-event logs.

use crate::op::Rank;
use fs::{FileId, MetaVerb};
use serde::{Deserialize, Serialize};
use simcore::Time;

/// What a trace event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Local computation.
    Compute,
    /// Message sent (payload size, destination).
    Send {
        /// Destination rank.
        dst: Rank,
        /// Payload bytes.
        bytes: u64,
    },
    /// Message received (source).
    Recv {
        /// Source rank.
        src: Rank,
    },
    /// Barrier participation.
    Barrier,
    /// Broadcast participation.
    Bcast {
        /// Root rank.
        root: Rank,
        /// Payload bytes.
        bytes: u64,
    },
    /// All-reduce participation.
    Allreduce {
        /// Per-rank contribution bytes.
        bytes: u64,
    },
    /// `MPI_Waitall` over the rank's outstanding nonblocking requests.
    Wait,
    /// File open (`create` true for creation).
    Open {
        /// File.
        file: FileId,
        /// Created/truncated?
        create: bool,
    },
    /// File close.
    Close {
        /// File.
        file: FileId,
    },
    /// A write at application level.
    Write {
        /// File.
        file: FileId,
        /// Offset.
        offset: u64,
        /// Length.
        len: u64,
        /// Was this a collective (`_all`) operation?
        collective: bool,
    },
    /// A read at application level.
    Read {
        /// File.
        file: FileId,
        /// Offset.
        offset: u64,
        /// Length.
        len: u64,
        /// Was this a collective (`_all`) operation?
        collective: bool,
    },
    /// Explicit file sync.
    Sync {
        /// File.
        file: FileId,
    },
    /// A workload-defined section marker.
    Marker(u32),
    /// An mdtest-class metadata operation.
    Meta {
        /// The metadata verb.
        verb: MetaVerb,
        /// Containing directory.
        dir: FileId,
        /// Target file (the directory itself for mkdir/readdir).
        file: FileId,
    },
}

impl TraceKind {
    /// Whether this is a file I/O data operation (read or write).
    pub fn is_io_data(&self) -> bool {
        matches!(self, TraceKind::Write { .. } | TraceKind::Read { .. })
    }

    /// Stable label of the primitive (trace exports, metrics).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Compute => "compute",
            TraceKind::Send { .. } => "send",
            TraceKind::Recv { .. } => "recv",
            TraceKind::Barrier => "barrier",
            TraceKind::Bcast { .. } => "bcast",
            TraceKind::Allreduce { .. } => "allreduce",
            TraceKind::Wait => "wait",
            TraceKind::Open { .. } => "open",
            TraceKind::Close { .. } => "close",
            TraceKind::Write { .. } => "write",
            TraceKind::Read { .. } => "read",
            TraceKind::Sync { .. } => "sync",
            TraceKind::Marker(_) => "marker",
            TraceKind::Meta { verb, .. } => match verb {
                MetaVerb::Create => "meta_create",
                MetaVerb::Stat => "meta_stat",
                MetaVerb::Unlink => "meta_unlink",
                MetaVerb::Mkdir => "meta_mkdir",
                MetaVerb::Readdir => "meta_readdir",
            },
        }
    }

    /// Payload bytes the primitive moved (0 for control/compute).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            TraceKind::Send { bytes, .. }
            | TraceKind::Bcast { bytes, .. }
            | TraceKind::Allreduce { bytes } => *bytes,
            TraceKind::Write { len, .. } | TraceKind::Read { len, .. } => *len,
            _ => 0,
        }
    }

    /// Whether this is communication (send/recv/collectives).
    pub fn is_comm(&self) -> bool {
        matches!(
            self,
            TraceKind::Send { .. }
                | TraceKind::Recv { .. }
                | TraceKind::Barrier
                | TraceKind::Bcast { .. }
                | TraceKind::Allreduce { .. }
                | TraceKind::Wait
        )
    }
}

/// One traced primitive execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Executing rank.
    pub rank: Rank,
    /// When the primitive began.
    pub start: Time,
    /// When it completed (from the rank's perspective).
    pub end: Time,
    /// What it was.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// The primitive's duration.
    pub fn duration(&self) -> Time {
        self.end.saturating_sub(self.start)
    }
}

/// Consumer of trace events.
pub trait TraceSink {
    /// Records one event. Events of one rank arrive in program order;
    /// events of different ranks may interleave arbitrarily.
    fn record(&mut self, ev: TraceEvent);

    /// Whether this sink needs the events of *every* member of a collapsed
    /// symmetric cohort. Returning `false` permits the runtime to skip
    /// event emission for cohorts entirely (members *and* representative),
    /// which is what makes collapsed execution O(1) per member. The
    /// default keeps every sink complete; only sinks that discard events
    /// ([`NullSink`]) should opt out.
    fn wants_cohort_members(&self) -> bool {
        true
    }
}

/// A sink that stores every event (use only for small runs / diagrams).
#[derive(Default)]
pub struct VecSink {
    /// The collected events in arrival order.
    pub events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// A sink that discards everything.
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: TraceEvent) {}

    fn wants_cohort_members(&self) -> bool {
        false
    }
}

/// Two sinks in sequence.
pub struct TeeSink<'a, A, B> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<'_, A, B> {
    fn record(&mut self, ev: TraceEvent) {
        self.a.record(ev);
        self.b.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind) -> TraceEvent {
        TraceEvent {
            rank: 0,
            start: Time::from_secs(1),
            end: Time::from_secs(3),
            kind,
        }
    }

    #[test]
    fn duration_and_classification() {
        let e = ev(TraceKind::Write {
            file: FileId(1),
            offset: 0,
            len: 10,
            collective: false,
        });
        assert_eq!(e.duration(), Time::from_secs(2));
        assert!(e.kind.is_io_data());
        assert!(!e.kind.is_comm());
        assert!(ev(TraceKind::Barrier).kind.is_comm());
        assert!(!ev(TraceKind::Marker(1)).kind.is_io_data());
    }

    #[test]
    fn vec_sink_collects_and_tee_duplicates() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        {
            let mut tee = TeeSink {
                a: &mut a,
                b: &mut b,
            };
            tee.record(ev(TraceKind::Barrier));
            tee.record(ev(TraceKind::Compute));
        }
        assert_eq!(a.events.len(), 2);
        assert_eq!(b.events.len(), 2);
        let mut n = NullSink;
        n.record(ev(TraceKind::Barrier));
    }
}
