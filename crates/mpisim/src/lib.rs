//! # mpisim — a simulated MPI runtime with MPI-IO
//!
//! Ranks execute *op programs* ([`op::MpiOp`]) on a [`machine::Machine`]
//! (the cluster model): compute burns simulated time, point-to-point
//! messages match eagerly or by rendezvous, barriers synchronize the world,
//! and MPI-IO operations run either *independently* (each rank hits its
//! node's mount directly — the BT-IO `simple` subtype) or *collectively*
//! with two-phase collective buffering (data is exchanged to per-node
//! aggregators which issue large contiguous file accesses — the `full`
//! subtype).
//!
//! Every primitive is reported to a [`trace::TraceSink`], which is exactly
//! the information the paper's PAS2P-IO tracing library captures via
//! `LD_PRELOAD`; the methodology crate builds application characterizations
//! (paper Tables II/V/VIII) and phase diagrams (Figs. 8/16) from it.
//!
//! Programs are consumed through [`op::OpStream`], so workloads with
//! millions of operations (NAS BT-IO *simple* issues 4.2 × 10⁶ writes at
//! class C) can generate ops on the fly without materializing them.

pub mod collapse;
pub mod machine;
pub mod op;
pub mod runtime;
pub mod trace;

pub use collapse::collapsed_run_count;
pub use machine::Machine;
pub use op::{
    ChainStream, ChunkedStream, GenStream, MpiOp, OpStream, SignedStream, StreamSignature,
    VecStream,
};
pub use runtime::{ProgramFault, RunError, RunStats, Runtime, RuntimeParams};
pub use trace::{NullSink, TraceEvent, TraceKind, TraceSink, VecSink};
