//! Collapsed execution of symmetric rank cohorts.
//!
//! Thousand-rank I/O benchmarks are dominated by *symmetric* per-rank
//! work: every rank runs the same program modulo rank-indexed file
//! offsets. The granular runtime steps each rank individually, so a
//! 1024-rank IOR sweep costs 1024× the work of a 1-rank sweep even though
//! 1023 of the timelines are byte-identical. This module detects such
//! cohorts and executes *one representative per cohort*, broadcasting its
//! timing to every member.
//!
//! Safety is gated, never assumed:
//!
//! - the machine must declare [`Machine::rank_invariant`] costs;
//! - every program must carry a [`StreamSignature`] asserting symmetry;
//! - placement must be one rank per node (shared nodes couple timelines
//!   through per-node machine state);
//! - no chaos injection may be active (faults break symmetry).
//!
//! Whenever any gate fails, [`plan`] returns `None` and the caller falls
//! back to full granular execution. When a signature turns out to *lie*
//! (a non-collapsible op, or members diverging from the representative),
//! the executor panics rather than silently producing wrong results.

use crate::machine::Machine;
use crate::op::{MpiOp, OpStream, Rank, StreamSignature};
use crate::runtime::{RankStats, RunStats, RuntimeParams};
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use netsim::NodeId;
use simcore::{Abort, Time, Watchdog};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

static COLLAPSED_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of runs that took the collapsed path since process start.
/// Diagnostic: tests and the bench harness assert engagement with it.
pub fn collapsed_run_count() -> u64 {
    COLLAPSED_RUNS.load(Ordering::Relaxed)
}

/// Decides whether a run may execute collapsed. Returns the cohorts
/// (each a list of ranks sharing one signature and node class, lowest
/// rank first — the representative), or `None` when any symmetry gate
/// fails and the run must execute granularly.
pub(crate) fn plan(
    machine: &dyn Machine,
    placement: &[NodeId],
    signatures: &[Option<StreamSignature>],
) -> Option<Vec<Vec<Rank>>> {
    if placement.is_empty() || !machine.rank_invariant() || simcore::chaos::is_active() {
        return None;
    }
    // Two ranks on one node contend through that node's private machine
    // state; collapse cannot reproduce that coupling.
    let mut nodes = HashSet::with_capacity(placement.len());
    if !placement.iter().all(|&n| nodes.insert(n)) {
        return None;
    }
    let mut groups: Vec<((StreamSignature, u64), Vec<Rank>)> = Vec::new();
    for (rank, sig) in signatures.iter().enumerate() {
        let key = ((*sig)?, machine.node_class(placement[rank]));
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(rank),
            None => groups.push((key, vec![rank])),
        }
    }
    // All-singleton cohorts would just re-implement granular execution.
    if groups.iter().all(|(_, members)| members.len() < 2) {
        return None;
    }
    Some(groups.into_iter().map(|(_, members)| members).collect())
}

struct CohortExec {
    /// Member ranks; `ranks[0]` is the representative.
    ranks: Vec<Rank>,
    rep: Box<dyn OpStream>,
    /// Streams of `ranks[1..]`, stepped in lockstep for verification and
    /// event emission; empty when the sink and observers need no member
    /// events (the O(1)-per-member fast path).
    members: Vec<Box<dyn OpStream>>,
    node: NodeId,
    t: Time,
    stats: RankStats,
    barrier_start: Option<Time>,
    done: bool,
}

/// Executes the planned `cohorts`. Must only be called with the output of
/// [`plan`] for the same machine/placement/programs.
pub(crate) fn run(
    params: &RuntimeParams,
    machine: &mut dyn Machine,
    placement: &[NodeId],
    programs: Vec<Box<dyn OpStream>>,
    cohorts: Vec<Vec<Rank>>,
    sink: &mut dyn TraceSink,
    mut watchdog: Option<Watchdog>,
) -> Result<RunStats, Abort> {
    COLLAPSED_RUNS.fetch_add(1, Ordering::Relaxed);
    let world = programs.len();
    let emit_members = sink.wants_cohort_members() || simcore::obs::enabled();
    let mut slots: Vec<Option<Box<dyn OpStream>>> = programs.into_iter().map(Some).collect();
    let mut execs: Vec<CohortExec> = cohorts
        .into_iter()
        .map(|ranks| {
            let take = |slots: &mut Vec<Option<Box<dyn OpStream>>>, r: Rank| -> Box<dyn OpStream> {
                slots[r].take().expect("each rank in exactly one cohort")
            };
            let rep = take(&mut slots, ranks[0]);
            let members = if emit_members {
                ranks[1..].iter().map(|&r| take(&mut slots, r)).collect()
            } else {
                Vec::new()
            };
            CohortExec {
                node: placement[ranks[0]],
                ranks,
                rep,
                members,
                t: Time::ZERO,
                stats: RankStats::default(),
                barrier_start: None,
                done: false,
            }
        })
        .collect();

    loop {
        for c in execs.iter_mut() {
            if !c.done && c.barrier_start.is_none() {
                step_cohort(machine, sink, &mut watchdog, c, emit_members)?;
            }
        }
        if execs.iter().all(|c| c.done) {
            break;
        }
        // Every unfinished cohort is parked at a barrier now. If any other
        // cohort already ended, that barrier can never release — the same
        // condition the granular runtime reports as a deadlock.
        assert!(
            !execs.iter().any(|c| c.done),
            "rank never finished: deadlock in the program (blocked on a barrier)"
        );
        let hops = (world.max(2) as f64).log2().ceil() as u64;
        let latest = execs.iter().map(|c| c.t).max().expect("nonempty run");
        let release = latest + params.barrier_hop * hops;
        for c in execs.iter_mut() {
            let start = c.barrier_start.take().expect("all cohorts parked");
            c.stats.comm_time += release - start;
            c.t = release;
            if emit_members {
                for &r in &c.ranks {
                    emit(sink, r, start, release, TraceKind::Barrier);
                }
            }
        }
    }

    let mut stats = RunStats {
        wall_time: Time::ZERO,
        per_rank: Vec::new(),
    };
    let mut per: Vec<Option<RankStats>> = Vec::new();
    per.resize_with(world, || None);
    for c in execs.iter_mut() {
        c.stats.end = c.t;
        stats.wall_time = stats.wall_time.max(c.t);
        for &r in &c.ranks[1..] {
            per[r] = Some(c.stats.clone());
        }
        per[c.ranks[0]] = Some(std::mem::take(&mut c.stats));
    }
    stats.per_rank = per
        .into_iter()
        .map(|s| s.expect("every rank in exactly one cohort"))
        .collect();
    Ok(stats)
}

/// Runs one cohort's representative until it parks at a barrier or ends,
/// mirroring the granular executor's per-op arithmetic exactly.
fn step_cohort(
    machine: &mut dyn Machine,
    sink: &mut dyn TraceSink,
    watchdog: &mut Option<Watchdog>,
    c: &mut CohortExec,
    emit_members: bool,
) -> Result<(), Abort> {
    loop {
        if let Some(w) = watchdog.as_mut() {
            w.observe(c.t)?;
        }
        let op = match c.rep.next_op() {
            Some(op) => op,
            None => {
                for m in &mut c.members {
                    let mop = m.next_op();
                    assert!(
                        mop.is_none(),
                        "collapsed cohort signature violated: member program \
                         outlives its representative (next op {mop:?})"
                    );
                }
                c.done = true;
                return Ok(());
            }
        };
        let start = c.t;
        let kind = match op {
            MpiOp::Compute(d) => {
                c.t += d;
                c.stats.compute_time += d;
                TraceKind::Compute
            }
            MpiOp::Marker(id) => TraceKind::Marker(id),
            MpiOp::Barrier => {
                c.barrier_start = Some(start);
                // Consume the members' matching barriers so lockstep
                // verification stays aligned across the release.
                for m in &mut c.members {
                    let mop = m.next_op();
                    assert!(
                        matches!(mop, Some(MpiOp::Barrier)),
                        "collapsed cohort signature violated: representative \
                         at Barrier, member at {mop:?}"
                    );
                }
                return Ok(());
            }
            MpiOp::FileOpen { file, create } => {
                let end = machine.io_open(start, c.node, file, create);
                c.stats.meta_time += end - start;
                c.t = end;
                TraceKind::Open { file, create }
            }
            MpiOp::FileClose { file } => {
                let end = machine.io_close(start, c.node, file);
                c.stats.meta_time += end - start;
                c.t = end;
                TraceKind::Close { file }
            }
            MpiOp::FileSync { file } => {
                let end = machine.io_sync(start, c.node, file);
                c.stats.meta_time += end - start;
                c.t = end;
                TraceKind::Sync { file }
            }
            MpiOp::Meta { verb, dir, file } => {
                let end = machine.io_meta(start, c.node, verb, dir, file);
                c.stats.meta_time += end - start;
                c.stats.meta_ops += 1;
                c.t = end;
                TraceKind::Meta { verb, dir, file }
            }
            MpiOp::WriteAt { file, offset, len } => {
                let end = machine.io_write(start, c.node, file, offset, len);
                c.stats.io_time += end - start;
                c.stats.bytes_written += len;
                c.stats.io_ops += 1;
                c.t = end;
                TraceKind::Write {
                    file,
                    offset,
                    len,
                    collective: false,
                }
            }
            MpiOp::ReadAt { file, offset, len } => {
                let end = machine.io_read(start, c.node, file, offset, len);
                c.stats.io_time += end - start;
                c.stats.bytes_read += len;
                c.stats.io_ops += 1;
                c.t = end;
                TraceKind::Read {
                    file,
                    offset,
                    len,
                    collective: false,
                }
            }
            other => panic!("collapsed cohort signature violated: non-collapsible op {other:?}"),
        };
        let end = c.t;
        if emit_members {
            emit(sink, c.ranks[0], start, end, kind);
            for i in 0..c.members.len() {
                let mop = c.members[i].next_op();
                let mkind = member_kind(op, mop, c.ranks[0], c.ranks[1 + i]);
                emit(sink, c.ranks[1 + i], start, end, mkind);
            }
        }
    }
}

/// Verifies a member's op against the representative's (equal modulo
/// rank-indexed offsets / metadata targets) and returns the member's own
/// trace kind — members trace their true offsets with the
/// representative's timing.
fn member_kind(rep: MpiOp, member: Option<MpiOp>, rep_rank: Rank, member_rank: Rank) -> TraceKind {
    let lied = |m: &dyn std::fmt::Debug| -> ! {
        panic!(
            "collapsed cohort signature violated: representative rank {rep_rank} \
             ran {rep:?} while member rank {member_rank} ran {m:?}"
        )
    };
    let Some(m) = member else {
        lied(&"<end of program>")
    };
    use MpiOp::*;
    match (rep, m) {
        (Compute(a), Compute(b)) if a == b => TraceKind::Compute,
        (Marker(a), Marker(b)) if a == b => TraceKind::Marker(a),
        (
            FileOpen { file, create },
            FileOpen {
                file: f2,
                create: c2,
            },
        ) if file == f2 && create == c2 => TraceKind::Open { file, create },
        (FileClose { file }, FileClose { file: f2 }) if file == f2 => TraceKind::Close { file },
        (FileSync { file }, FileSync { file: f2 }) if file == f2 => TraceKind::Sync { file },
        (
            Meta { verb, dir, .. },
            Meta {
                verb: v2,
                dir: d2,
                file,
            },
        ) if verb == v2 && dir == d2 => TraceKind::Meta { verb, dir, file },
        (
            WriteAt { file, len, .. },
            WriteAt {
                file: f2,
                offset,
                len: l2,
            },
        ) if file == f2 && len == l2 => TraceKind::Write {
            file,
            offset,
            len,
            collective: false,
        },
        (
            ReadAt { file, len, .. },
            ReadAt {
                file: f2,
                offset,
                len: l2,
            },
        ) if file == f2 && len == l2 => TraceKind::Read {
            file,
            offset,
            len,
            collective: false,
        },
        (_, m) => lied(&m),
    }
}

fn emit(sink: &mut dyn TraceSink, rank: Rank, start: Time, end: Time, kind: TraceKind) {
    simcore::obs::emit(|| simcore::obs::ObsEvent::MpiOp {
        rank,
        label: kind.label(),
        start,
        end,
        bytes: kind.payload_bytes(),
        io: kind.is_io_data(),
    });
    sink.record(TraceEvent {
        rank,
        start,
        end,
        kind,
    });
}
