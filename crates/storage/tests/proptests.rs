//! Property tests of RAID geometry, device timing, and degraded-mode
//! invariants.

use proptest::prelude::*;
use simcore::{SplitMix64, Time, KIB};
use storage::raid::raid5_locate;
use storage::{BlockReq, Disk, DiskParams, Jbod, Raid1, Raid5, Volume, VolumeError};

fn raid5_members(n_disks: usize) -> Vec<Disk> {
    (0..n_disks)
        .map(|i| Disk::new(DiskParams::sata_7200(230, 75), i as u64 + 1))
        .collect()
}

proptest! {
    /// RAID 5 mapping is injective: distinct logical chunks never collide
    /// on (disk, disk_offset).
    #[test]
    fn raid5_mapping_is_injective(
        n_disks in 3usize..9,
        stripe_kib in 1u64..512,
        chunks in 1u64..200,
    ) {
        let stripe = stripe_kib * KIB;
        let mut seen = std::collections::HashSet::new();
        for i in 0..chunks {
            let c = raid5_locate(i * stripe, stripe, n_disks);
            prop_assert!(c.disk < n_disks);
            prop_assert!(c.parity_disk < n_disks);
            prop_assert_ne!(c.disk, c.parity_disk, "data on the parity disk");
            prop_assert!(seen.insert((c.disk, c.disk_offset)), "collision at chunk {}", i);
        }
    }

    /// Every row has exactly one parity disk, and each disk carries parity
    /// for a fair share of rows (rotation).
    #[test]
    fn raid5_parity_rotates(n_disks in 3usize..9) {
        let stripe = 256 * KIB;
        let row_width = (n_disks as u64 - 1) * stripe;
        let rows = n_disks as u64 * 6;
        let mut counts = vec![0u64; n_disks];
        for r in 0..rows {
            let c = raid5_locate(r * row_width, stripe, n_disks);
            counts[c.parity_disk] += 1;
        }
        for (d, &count) in counts.iter().enumerate() {
            prop_assert_eq!(count, 6, "disk {} carries {} parity rows", d, count);
        }
    }

    /// Volume grants are causally sane for any op mix: service starts at or
    /// after submission and acknowledgments never precede starts.
    #[test]
    fn raid5_grants_are_causal(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..10_000u64, 1u64..64u64), 1..60
    )) {
        let disks: Vec<Disk> = (0..5)
            .map(|i| Disk::new(DiskParams::sata_7200(230, 75), i + 1))
            .collect();
        let mut raid = Raid5::new(disks, 256 * KIB, true);
        let mut now = Time::ZERO;
        for (is_write, block, len_kib) in ops {
            let req = if is_write {
                BlockReq::write(block * 256 * KIB, len_kib * KIB)
            } else {
                BlockReq::read(block * 256 * KIB, len_kib * KIB)
            };
            let g = raid.submit(now, req);
            prop_assert!(g.start >= now || g.start >= Time::ZERO);
            prop_assert!(g.ack >= g.start);
            prop_assert!(g.durable >= g.ack || g.durable == g.ack);
            // Advance time to keep submissions nondecreasing.
            now = now.max(g.ack);
        }
    }

    /// Disk service time is monotone in request size for a fixed position.
    #[test]
    fn disk_transfer_monotone_in_size(len_kib in 1u64..10_000) {
        let mut d1 = Disk::new(DiskParams::sata_7200(230, 75), 1);
        let mut d2 = Disk::new(DiskParams::sata_7200(230, 75), 1);
        // Same seed → same positioning draw; larger request cannot be faster.
        let g1 = d1.submit(Time::ZERO, BlockReq::read(0, len_kib * KIB));
        let g2 = d2.submit(Time::ZERO, BlockReq::read(0, (len_kib + 1) * KIB));
        prop_assert!(g2.ack >= g1.ack);
    }

    /// A failed RAID 5 member never serves another command, and a
    /// row-spanning degraded read reconstructs from every survivor.
    #[test]
    fn raid5_degraded_reads_touch_exactly_the_survivors(
        n_disks in 3usize..8,
        failed_pick in 0usize..8,
        rows in 1u64..6,
    ) {
        let failed = failed_pick % n_disks;
        let stripe = 64 * KIB;
        let mut raid = Raid5::new(raid5_members(n_disks), stripe, true);
        let row_width = (n_disks as u64 - 1) * stripe;
        let g = raid.submit(Time::ZERO, BlockReq::read(0, rows * row_width));
        let now = g.ack;
        raid.fail_disk(failed).unwrap();
        // A second failure would lose data: typed error, not a panic.
        let second = (failed + 1) % n_disks;
        prop_assert_eq!(
            raid.fail_disk(second),
            Err(VolumeError::AlreadyDegraded { failed })
        );
        let before = raid.member_ios();
        let g = raid.submit(now, BlockReq::read(0, rows * row_width));
        prop_assert!(g.ack >= now);
        let after = raid.member_ios();
        prop_assert_eq!(after[failed], before[failed], "dead member must not serve");
        for d in (0..n_disks).filter(|&d| d != failed) {
            prop_assert!(after[d] > before[d], "survivor {} idle in degraded read", d);
        }
    }

    /// Degraded RAID 5 writes skip the dead member (its chunks are covered
    /// by the surviving data + parity) and still acknowledge causally.
    #[test]
    fn raid5_degraded_writes_skip_the_dead_member(
        n_disks in 3usize..8,
        failed_pick in 0usize..8,
        rows in 1u64..6,
    ) {
        let failed = failed_pick % n_disks;
        let stripe = 64 * KIB;
        let mut raid = Raid5::new(raid5_members(n_disks), stripe, true);
        let row_width = (n_disks as u64 - 1) * stripe;
        raid.fail_disk(failed).unwrap();
        let before = raid.member_ios();
        let g = raid.submit(Time::ZERO, BlockReq::write(0, rows * row_width));
        prop_assert!(g.ack >= Time::ZERO);
        prop_assert!(g.durable >= g.ack);
        let after = raid.member_ios();
        prop_assert_eq!(after[failed], before[failed], "dead member must not be written");
        let touched = (0..n_disks).filter(|&d| after[d] > before[d]).count();
        prop_assert!(touched > 0, "write must reach the survivors");
        prop_assert!(touched < n_disks);
    }

    /// A degraded mirror routes every command to the survivor.
    #[test]
    fn raid1_degraded_routes_everything_to_the_survivor(
        failed in 0usize..2,
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..1000u64, 1u64..64u64), 1..30
        ),
    ) {
        let mut raid = Raid1::new(
            Disk::new(DiskParams::sata_7200(230, 75), 1),
            Disk::new(DiskParams::sata_7200(230, 75), 2),
        );
        raid.fail_disk(failed).unwrap();
        let before = raid.member_ios();
        let n_ops = ops.len() as u64;
        let mut now = Time::ZERO;
        for (is_write, block, len_kib) in ops {
            let req = if is_write {
                BlockReq::write(block * 4 * KIB, len_kib * KIB)
            } else {
                BlockReq::read(block * 4 * KIB, len_kib * KIB)
            };
            now = raid.submit(now, req).ack;
        }
        let after = raid.member_ios();
        prop_assert_eq!(after[failed], before[failed], "dead mirror must not serve");
        prop_assert!(after[1 - failed] >= before[1 - failed] + n_ops);
    }

    /// A replacement rebuild covers exactly the written extent (one stripe
    /// chunk per addressed row, bitmap-assisted) and always finishes.
    #[test]
    fn raid5_rebuild_covers_the_addressed_extent(
        n_disks in 3usize..7,
        failed_pick in 0usize..7,
        rows in 1u64..8,
    ) {
        let failed = failed_pick % n_disks;
        let stripe = 64 * KIB;
        let mut raid = Raid5::new(raid5_members(n_disks), stripe, true);
        let row_width = (n_disks as u64 - 1) * stripe;
        let g = raid.submit(Time::ZERO, BlockReq::write(0, rows * row_width));
        let now = g.durable.max(g.ack);
        raid.fail_disk(failed).unwrap();
        raid.replace_disk(now, failed).unwrap();
        let whole = raid.finish_rebuild(now);
        prop_assert!(whole >= now);
        let report = raid.rebuild_report().expect("rebuild ran");
        prop_assert_eq!(report.finished, Some(whole));
        prop_assert_eq!(report.bytes_done, report.bytes_total);
        prop_assert_eq!(report.bytes_total, rows * stripe, "one chunk per addressed row");
        // The array is whole again: a fresh failure is accepted.
        prop_assert_eq!(raid.fail_disk(failed), Ok(()));
    }

    /// The bulk fast path is grant-, meter- and IO-count-identical to the
    /// granular chunk loop for arbitrary aligned RAID 5 write runs,
    /// including runs with a partial tail chunk.
    #[test]
    fn raid5_bulk_runs_match_the_granular_loop(
        n_disks in 3usize..8,
        rows_per_chunk in 1u64..4,
        chunks in 2u64..12,
        tail_rows in 0u64..3,
        start_row in 0u64..32,
    ) {
        let stripe = 64 * KIB;
        let row_width = (n_disks as u64 - 1) * stripe;
        let chunk = rows_per_chunk * row_width;
        let len = chunks * chunk + tail_rows.min(rows_per_chunk - 1) * row_width;
        let req = BlockReq::write(start_row * row_width, len);

        let mut bulk = Raid5::new(raid5_members(n_disks), stripe, true);
        let mut gran = Raid5::new(raid5_members(n_disks), stripe, true);
        gran.set_bulk_enabled(false);

        let a = bulk.submit_run(Time::ZERO, req, chunk);
        let b = gran.submit_run(Time::ZERO, req, chunk);
        prop_assert_eq!(a, b, "closed-form grant diverged from the chunk loop");
        prop_assert_eq!(bulk.flush(a.ack), gran.flush(b.ack));
        prop_assert_eq!(bulk.member_ios().to_vec(), gran.member_ios().to_vec());
        prop_assert_eq!(
            format!("{:?}", bulk.meter()),
            format!("{:?}", gran.meter()),
            "meter state diverged"
        );
        prop_assert!(bulk.bulk_run_stats().0 >= 1, "eligible run missed the fast path");
        prop_assert_eq!(gran.bulk_run_stats().0, 0);
    }

    /// Chunked runs through a JBOD are equivalent under the fast path for
    /// arbitrary op mixes, offsets and chunk sizes — eligible or not.
    #[test]
    fn jbod_chunked_runs_are_equivalent_for_arbitrary_mixes(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..4000u64, 1u64..96u64, 1u64..16u64), 1..16
        ),
    ) {
        let mut bulk = Jbod::new(Disk::new(DiskParams::sata_7200(230, 75), 9));
        let mut gran = Jbod::new(Disk::new(DiskParams::sata_7200(230, 75), 9));
        gran.set_bulk_enabled(false);
        let mut now = Time::ZERO;
        for (is_write, block, len_kib, chunk_kib) in ops {
            let off = block * 16 * KIB;
            let len = len_kib * KIB + 17;
            let req = if is_write {
                BlockReq::write(off, len)
            } else {
                BlockReq::read(off, len)
            };
            let a = bulk.submit_run(now, req, chunk_kib * 8 * KIB);
            let b = gran.submit_run(now, req, chunk_kib * 8 * KIB);
            prop_assert_eq!(a, b);
            now = now.max(a.ack);
        }
        // The meter debug state covers byte/op counters, Welford moments and
        // the member IO count bit-for-bit.
        prop_assert_eq!(format!("{:?}", bulk.meter()), format!("{:?}", gran.meter()));
    }

    /// A transfer whose conservative completion bound overlaps a pending
    /// fault window always takes the event-granular path — and its timings
    /// match the pre-fast-path engine exactly either way.
    #[test]
    fn fault_window_overlap_forces_the_granular_path(
        n_disks in 3usize..6,
        chunks in 2u64..10,
        horizon_ms in 0u64..2000,
    ) {
        let stripe = 64 * KIB;
        let row_width = (n_disks as u64 - 1) * stripe;
        let mut v = Raid5::new(raid5_members(n_disks), stripe, true);
        let mut reference = Raid5::new(raid5_members(n_disks), stripe, true);
        reference.set_bulk_enabled(false);
        v.set_fault_horizon(Some(Time::from_millis(horizon_ms)));

        let req = BlockReq::write(0, chunks * row_width);
        let a = v.submit_run(Time::ZERO, req, row_width);
        let b = reference.submit_run(Time::ZERO, req, row_width);
        prop_assert_eq!(a, b, "horizon gating must not change timing");
        if Time::from_millis(horizon_ms) <= a.ack {
            // The fault fires inside the transfer: the closed form is
            // forbidden, every command must be individually schedulable.
            prop_assert_eq!(v.bulk_run_stats(), (0, 1));
        }
    }

    /// Identical request sequences produce identical timelines.
    #[test]
    fn disk_is_deterministic(seed in any::<u64>(), n in 1usize..50) {
        let run = |seed: u64| {
            let mut d = Disk::new(DiskParams::sata_7200(230, 75), seed);
            let mut rng = SplitMix64::new(seed ^ 0xabc);
            let mut now = Time::ZERO;
            for _ in 0..n {
                let off = rng.next_below(1000) * KIB * 1024;
                now = d.submit(now, BlockReq::read(off, 64 * KIB)).ack;
            }
            now
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
