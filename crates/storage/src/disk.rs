//! A mechanical (rotating) disk model.
//!
//! Service time of one request = command overhead + positioning + media
//! transfer. Positioning is skipped when the request is sequential with the
//! previous one (offset equals the previous request's end), which is what
//! lets bandwidth-vs-blocksize curves rise toward the media rate as block
//! size grows — the shape IOzone measures in the paper's Fig. 5/13.
//!
//! Seek time scales with the square root of the seek distance fraction
//! (classic Ruemmler–Wilkes approximation); rotational delay is uniform in
//! `[0, full_revolution)` drawn from a deterministic per-disk RNG.

use crate::req::{BlockOp, BlockReq, IoGrant};
use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, FifoResource, SplitMix64, Time};

/// Grant of a closed-form sequential command run
/// (see [`Disk::submit_seq_run`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqRunGrant {
    /// Start instant of the first command in the run.
    pub start: Time,
    /// Completion of the first command.
    pub first_ack: Time,
    /// Service time of each command in the run.
    pub service: Time,
    /// Completion of the last command.
    pub last_ack: Time,
}

impl SeqRunGrant {
    /// Completion instant of command `i` (0-based) within the run.
    pub fn ack(&self, i: u64) -> Time {
        self.first_ack + self.service * i
    }
}

/// Physical parameters of a disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskParams {
    /// Media transfer rate for reads.
    pub read_bw: Bandwidth,
    /// Media transfer rate for writes.
    pub write_bw: Bandwidth,
    /// Average (one-third-stroke) seek time.
    pub avg_seek: Time,
    /// Track-to-track (minimum) seek time.
    pub track_to_track: Time,
    /// Time of one full platter revolution (7200 rpm → 8.33 ms).
    pub full_revolution: Time,
    /// Per-command controller/protocol overhead.
    pub cmd_overhead: Time,
    /// Addressable capacity in bytes.
    pub capacity: u64,
}

impl DiskParams {
    /// A 7200 rpm SATA disk of `capacity_gib` GiB with the given sequential
    /// media rate, typical of the 2007–2011 clusters in the paper.
    pub fn sata_7200(capacity_gib: u64, seq_mib_per_sec: u64) -> DiskParams {
        DiskParams {
            read_bw: Bandwidth::from_mib_per_sec(seq_mib_per_sec),
            // Writes on these drives are marginally slower than reads.
            write_bw: Bandwidth::from_mib_per_sec_f64(seq_mib_per_sec as f64 * 0.94),
            avg_seek: Time::from_millis_f64(8.5),
            track_to_track: Time::from_millis_f64(1.0),
            full_revolution: Time::from_micros_f64(8333.0),
            cmd_overhead: Time::from_micros(60),
            capacity: capacity_gib * 1024 * 1024 * 1024,
        }
    }
}

/// A single disk with a FIFO command queue.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Disk {
    params: DiskParams,
    timeline: FifoResource,
    /// End offset of the last serviced request, for sequential detection.
    last_end: Option<u64>,
    rng: SplitMix64,
    ios: u64,
    /// Service-time multiplier (1.0 nominal; > 1.0 models a limping drive
    /// suffering media retries or thermal recalibration storms).
    slow_factor: f64,
}

impl Disk {
    /// Creates a disk; `seed` determines its rotational-phase stream.
    pub fn new(params: DiskParams, seed: u64) -> Disk {
        Disk {
            params,
            timeline: FifoResource::new(),
            last_end: None,
            rng: SplitMix64::new(seed),
            ios: 0,
            slow_factor: 1.0,
        }
    }

    /// The disk's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Number of commands serviced.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// When the command queue drains.
    pub fn free_at(&self) -> Time {
        self.timeline.free_at()
    }

    /// Total busy time (for utilization reports).
    pub fn busy_time(&self) -> Time {
        self.timeline.busy_time()
    }

    /// Current service-time multiplier.
    pub fn slow_factor(&self) -> f64 {
        self.slow_factor
    }

    /// Sets the service-time multiplier. `1.0` restores nominal service;
    /// values `> 1.0` model a limping member. Non-positive inputs are
    /// clamped to nominal.
    pub fn set_slow_factor(&mut self, factor: f64) {
        self.slow_factor = if factor > 0.0 { factor } else { 1.0 };
    }

    /// Replaces the physical drive with a factory-fresh one (hot swap):
    /// the command queue, head position and any slow-down are discarded.
    /// The RNG stream and cumulative IO count carry over so traces stay
    /// deterministic and meters keep counting.
    pub fn swap_fresh(&mut self) {
        self.timeline.reset();
        self.last_end = None;
        self.slow_factor = 1.0;
    }

    /// Positioning time for a request starting at `offset` given the head
    /// position implied by the previous request.
    fn positioning(&mut self, offset: u64) -> Time {
        match self.last_end {
            Some(end) if end == offset => Time::ZERO,
            Some(end) => {
                let dist = end.abs_diff(offset);
                let frac = (dist as f64 / self.params.capacity.max(1) as f64).min(1.0);
                let t2t = self.params.track_to_track.as_secs_f64();
                let avg = self.params.avg_seek.as_secs_f64();
                // avg_seek corresponds to a one-third-stroke seek; scale so
                // frac == 1/3 reproduces avg_seek exactly.
                let seek = t2t + (avg - t2t) * (frac * 3.0).sqrt().min(1.5);
                let rot = self
                    .rng
                    .range_f64(0.0, self.params.full_revolution.as_secs_f64());
                Time::from_secs_f64(seek + rot)
            }
            // Cold start: a full positioning operation.
            None => {
                let rot = self
                    .rng
                    .range_f64(0.0, self.params.full_revolution.as_secs_f64());
                self.params.avg_seek + Time::from_secs_f64(rot)
            }
        }
    }

    /// Submits one command; returns its grant. Sequential requests skip
    /// positioning entirely (the head is already there).
    pub fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant {
        debug_assert!(req.len > 0, "zero-length disk request");
        let positioning = self.positioning(req.offset);
        let bw = if req.op.is_write() {
            self.params.write_bw
        } else {
            self.params.read_bw
        };
        let mut service = self.params.cmd_overhead + positioning + bw.time_for(req.len);
        if self.slow_factor != 1.0 {
            service = Time::from_secs_f64(service.as_secs_f64() * self.slow_factor);
        }
        let grant = self.timeline.submit(now, service);
        self.last_end = Some(req.end());
        self.ios += 1;
        IoGrant {
            start: grant.start,
            ack: grant.end,
            durable: grant.end,
        }
    }

    /// Submits `count` equal-sized sequential commands, all arriving at
    /// `now`, starting at `offset` — which must equal the previous
    /// command's end. Every command in the run therefore skips positioning
    /// and draws no rotational RNG, exactly as `count` individual
    /// sequential [`Disk::submit`] calls would, so the whole run collapses
    /// to one [`FifoResource::submit_run`]. Only valid on a nominal-speed
    /// member (`slow_factor == 1.0`); bulk callers gate on that.
    pub fn submit_seq_run(
        &mut self,
        now: Time,
        op: BlockOp,
        offset: u64,
        len: u64,
        count: u64,
    ) -> SeqRunGrant {
        debug_assert!(len > 0 && count > 0, "empty sequential run");
        debug_assert_eq!(
            self.last_end,
            Some(offset),
            "sequential run must continue the head position"
        );
        debug_assert_eq!(
            self.slow_factor, 1.0,
            "bulk runs are gated to nominal-speed members"
        );
        let bw = if op.is_write() {
            self.params.write_bw
        } else {
            self.params.read_bw
        };
        let service = self.params.cmd_overhead + bw.time_for(len);
        let grant = self.timeline.submit_run(now, service, count);
        self.last_end = Some(offset + len * count);
        self.ios += count;
        SeqRunGrant {
            start: grant.start,
            first_ack: grant.start + service,
            service,
            last_ack: grant.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::MIB;

    fn disk() -> Disk {
        Disk::new(DiskParams::sata_7200(150, 72), 1)
    }

    #[test]
    fn sequential_stream_approaches_media_rate() {
        let mut d = disk();
        // Warm up positioning.
        let mut now = d.submit(Time::ZERO, BlockReq::read(0, MIB)).ack;
        let start = now;
        let mut offset = MIB;
        let total = 256 * MIB;
        while offset < total + MIB {
            let g = d.submit(now, BlockReq::read(offset, MIB));
            now = g.ack;
            offset += MIB;
        }
        let rate = Bandwidth::measured(total, now - start);
        let media = d.params().read_bw.as_mib_per_sec();
        assert!(
            rate.as_mib_per_sec() > media * 0.9,
            "sequential rate {} far below media {}",
            rate,
            media
        );
    }

    #[test]
    fn random_access_is_iops_bound() {
        let mut d = disk();
        let mut now = Time::ZERO;
        let mut rng = SplitMix64::new(7);
        let n = 200;
        let start = now;
        for _ in 0..n {
            let off = rng.next_below(140 * 1024) * MIB; // scattered over 140 GiB
            let g = d.submit(now, BlockReq::read(off, 4096));
            now = g.ack;
        }
        let iops = n as f64 / (now - start).as_secs_f64();
        // 7200 rpm + 8.5 ms seeks: 60–130 IOPs is the physical range.
        assert!(iops > 50.0 && iops < 150.0, "random IOPs = {iops}");
    }

    #[test]
    fn larger_blocks_give_higher_random_bandwidth() {
        let rate_for = |block: u64| {
            let mut d = disk();
            let mut rng = SplitMix64::new(3);
            let mut now = Time::ZERO;
            let start = now;
            let n = 100;
            for _ in 0..n {
                let off = rng.next_below(100_000) * block;
                now = d.submit(now, BlockReq::read(off, block)).ack;
            }
            Bandwidth::measured(n * block, now - start).as_mib_per_sec()
        };
        let small = rate_for(32 * 1024);
        let large = rate_for(16 * MIB);
        assert!(
            large > small * 10.0,
            "expected strong block-size scaling: 32KiB={small}, 16MiB={large}"
        );
    }

    #[test]
    fn writes_slightly_slower_than_reads() {
        let p = DiskParams::sata_7200(150, 72);
        assert!(p.write_bw < p.read_bw);
    }

    #[test]
    fn queueing_is_fifo_across_submitters() {
        let mut d = disk();
        let a = d.submit(Time::ZERO, BlockReq::read(0, MIB));
        let b = d.submit(Time::ZERO, BlockReq::read(MIB, MIB));
        assert!(b.start >= a.ack, "second request must wait");
        assert_eq!(d.ios(), 2);
    }

    #[test]
    fn seq_run_matches_repeated_sequential_submits() {
        let mut bulk = disk();
        let mut granular = disk();
        // Identical warm-up so both heads sit at the same position with the
        // same RNG state.
        let now = bulk.submit(Time::ZERO, BlockReq::write(0, MIB)).ack;
        granular.submit(Time::ZERO, BlockReq::write(0, MIB));
        let run = bulk.submit_seq_run(now, BlockOp::Write, MIB, MIB, 7);
        let mut last = None;
        for i in 0..7u64 {
            last = Some(granular.submit(now, BlockReq::write(MIB + i * MIB, MIB)));
        }
        assert_eq!(run.last_ack, last.unwrap().ack);
        assert_eq!(run.ack(6), run.last_ack);
        assert_eq!(bulk.free_at(), granular.free_at());
        assert_eq!(bulk.busy_time(), granular.busy_time());
        assert_eq!(bulk.ios(), granular.ios());
        // Both heads end at the same place: the next random submit draws
        // the same positioning.
        let a = bulk.submit(run.last_ack, BlockReq::read(500 * MIB, MIB));
        let b = granular.submit(run.last_ack, BlockReq::read(500 * MIB, MIB));
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut d = disk();
            let mut rng = SplitMix64::new(5);
            let mut now = Time::ZERO;
            for _ in 0..50 {
                let off = rng.next_below(1000) * MIB;
                now = d.submit(now, BlockReq::write(off, 64 * 1024)).ack;
            }
            now
        };
        assert_eq!(run(), run());
    }
}
