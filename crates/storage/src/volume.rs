//! The [`Volume`] abstraction shared by JBOD, RAID engines and caches.

use crate::req::{BlockReq, IoGrant};
use serde::{Deserialize, Serialize};
use simcore::stats::TransferMeter;
use simcore::Time;
use std::fmt;

/// Process-wide switch for the bulk-transfer fast path.
///
/// The fast path is provably result-identical to the event-granular chunk
/// loop (see the equivalence property tests), so this switch only trades
/// wall-clock speed — it exists as a diagnostic escape hatch and so the
/// harness can measure both paths. Relaxed ordering is sufficient: a racing
/// reader takes one path or the other, and both produce the same grants.
pub mod fast_path {
    use std::sync::atomic::{AtomicBool, Ordering};

    static BULK_ENABLED: AtomicBool = AtomicBool::new(true);

    /// Enables or disables the closed-form bulk path process-wide.
    pub fn set_bulk_enabled(on: bool) {
        BULK_ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether the closed-form bulk path may be taken.
    pub fn bulk_enabled() -> bool {
        BULK_ENABLED.load(Ordering::Relaxed)
    }
}

/// Typed errors for volume configuration and fault operations.
///
/// Configuration mistakes (too few members, zero stripe) and fault
/// injections the volume cannot honour surface here instead of panicking,
/// so evaluation campaigns can reject bad configs gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VolumeError {
    /// The volume kind does not support the requested fault operation
    /// (e.g. failing a member of a JBOD, which has no redundancy).
    Unsupported(&'static str),
    /// The layout needs more member disks than were supplied.
    TooFewMembers {
        /// Volume kind (e.g. `"RAID 5"`).
        kind: &'static str,
        /// Minimum member count for the layout.
        need: usize,
        /// Members actually supplied.
        got: usize,
    },
    /// The stripe chunk size must be nonzero.
    ZeroStripe,
    /// A member index beyond the array width.
    UnknownMember {
        /// The offending index.
        disk: usize,
        /// Number of members in the array.
        members: usize,
    },
    /// The array already lost a member; a second failure is data loss.
    AlreadyDegraded {
        /// The member that already failed.
        failed: usize,
    },
    /// The member is healthy, so there is nothing to replace.
    NotFailed {
        /// The offending index.
        disk: usize,
    },
    /// A replacement is already being rebuilt onto.
    RebuildInProgress,
}

impl fmt::Display for VolumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VolumeError::Unsupported(kind) => {
                write!(f, "{kind} does not support this fault operation")
            }
            VolumeError::TooFewMembers { kind, need, got } => {
                write!(f, "{kind} needs at least {need} members, got {got}")
            }
            VolumeError::ZeroStripe => write!(f, "stripe chunk size must be nonzero"),
            VolumeError::UnknownMember { disk, members } => {
                write!(f, "member {disk} out of range (array has {members})")
            }
            VolumeError::AlreadyDegraded { failed } => {
                write!(
                    f,
                    "member {failed} already failed; a second failure loses data"
                )
            }
            VolumeError::NotFailed { disk } => {
                write!(f, "member {disk} has not failed; nothing to replace")
            }
            VolumeError::RebuildInProgress => {
                write!(f, "a rebuild is already in progress")
            }
        }
    }
}

impl std::error::Error for VolumeError {}

/// Progress of a background rebuild onto a replacement member.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RebuildReport {
    /// When the replacement arrived and the rebuild began.
    pub started: Time,
    /// When the rebuild completed (`None` while still running).
    pub finished: Option<Time>,
    /// Member-local bytes already written to the replacement.
    pub bytes_done: u64,
    /// Member-local bytes the rebuild must cover in total.
    pub bytes_total: u64,
}

impl RebuildReport {
    /// Length of the rebuild window so far (or in total once finished),
    /// measured from `started` to `finished`/`now`.
    pub fn duration(&self, now: Time) -> Time {
        self.finished.unwrap_or(now).saturating_sub(self.started)
    }
}

/// Transfer accounting for a volume, split by direction.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VolumeMeter {
    /// Read-side meter (bytes, rate, IOPs, latency).
    pub reads: TransferMeter,
    /// Write-side meter.
    pub writes: TransferMeter,
    /// Number of physical disk operations issued (parity and mirror
    /// traffic included), for write-amplification analysis.
    pub disk_ios: u64,
}

impl VolumeMeter {
    /// Records a logical request outcome.
    pub fn record(&mut self, req: &BlockReq, arrival: Time, grant: &IoGrant) {
        let meter = if req.op.is_write() {
            &mut self.writes
        } else {
            &mut self.reads
        };
        meter.record(req.len, grant.latency(arrival));
    }
}

/// A block volume: a logical byte address space with timed access.
///
/// Implementations must tolerate requests arriving in nondecreasing
/// simulation time; within that contract completion times are exact FIFO
/// queueing results.
pub trait Volume {
    /// Submits a request arriving at `now`; returns its completion times.
    fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant;

    /// Submits a logical request as `⌈len/chunk⌉` chunk-sized sub-requests
    /// all arriving at `now` and returns the joined grant envelope — the
    /// chunked submission pattern filesystem writeback uses. Volumes with a
    /// closed-form bulk path ([`Volume::try_bulk_run`]) collapse eligible
    /// runs to O(members) arithmetic; the grants, meters and member state
    /// are identical either way.
    fn submit_run(&mut self, now: Time, req: BlockReq, chunk: u64) -> IoGrant {
        debug_assert!(req.len > 0 && chunk > 0, "empty chunked run");
        // One aggregate event per run, from either path below. The closed
        // form and the granular loop produce identical grant envelopes, so
        // the trace aggregates identically with fast paths on or off (only
        // the `bulk` flag differs).
        let emit_run = |grant: &IoGrant, bulk: bool, kind: &'static str| {
            simcore::obs::emit(|| simcore::obs::ObsEvent::StorageRun {
                volume: kind,
                write: req.op.is_write(),
                bytes: req.len,
                ops: req.len.div_ceil(chunk),
                start: grant.start,
                end: grant.ack,
                bulk,
            });
        };
        if let Some(grant) = self.try_bulk_run(now, req, chunk) {
            emit_run(&grant, true, self.kind());
            return grant;
        }
        let mut grant: Option<IoGrant> = None;
        let mut pos = 0;
        while pos < req.len {
            let take = chunk.min(req.len - pos);
            let g = self.submit(
                now,
                BlockReq {
                    op: req.op,
                    offset: req.offset + pos,
                    len: take,
                },
            );
            grant = Some(match grant {
                Some(acc) => acc.join(g),
                None => g,
            });
            pos += take;
        }
        let grant = grant.expect("nonzero request produced no chunks");
        emit_run(&grant, false, self.kind());
        grant
    }

    /// Attempts the closed-form bulk path for a chunked run; `None` makes
    /// [`Volume::submit_run`] fall back to the event-granular loop.
    /// Implementations must produce exactly the grants, meter updates and
    /// member-disk state the granular loop would, and must decline whenever
    /// a fault window ([`Volume::set_fault_horizon`]) could overlap the
    /// transfer. Wrapper volumes with per-chunk state of their own (e.g.
    /// the controller write cache) keep the default so every chunk passes
    /// through their `submit`.
    fn try_bulk_run(&mut self, _now: Time, _req: BlockReq, _chunk: u64) -> Option<IoGrant> {
        None
    }

    /// Installs the *fault horizon*: the instant of the next scheduled
    /// fault, if any. Bulk fast paths refuse runs whose completion bound
    /// crosses it, so fault windows always see event-granular traffic.
    fn set_fault_horizon(&mut self, _horizon: Option<Time>) {}

    /// Enables or disables this volume's bulk fast path (diagnostics and
    /// equivalence tests; the process-wide switch is [`fast_path`]).
    fn set_bulk_enabled(&mut self, _on: bool) {}

    /// `(hits, misses)` of the bulk fast path: runs served in closed form
    /// vs. chunked runs that fell back to the granular loop.
    fn bulk_run_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Forces all previously acknowledged writes to stable media; returns
    /// the instant everything submitted so far is durable.
    fn flush(&mut self, now: Time) -> Time;

    /// Usable capacity in bytes (parity/mirror overhead excluded).
    fn capacity(&self) -> u64;

    /// Volume kind for reports (e.g. `"RAID 5"`).
    fn kind(&self) -> &'static str;

    /// Access statistics.
    fn meter(&self) -> &VolumeMeter;

    // --- Fault hooks -----------------------------------------------------
    //
    // Default implementations reject every fault: a volume participates in
    // fault injection only by overriding the hooks it can honour. Wrapper
    // volumes (caches, adapters) must forward all of them.

    /// Marks member `disk` as failed; redundant volumes keep serving in
    /// degraded mode.
    fn fail_disk(&mut self, _disk: usize) -> Result<(), VolumeError> {
        Err(VolumeError::Unsupported(self.kind()))
    }

    /// Hot-swaps the failed member `disk` for a fresh drive at `now` and
    /// starts a background rebuild onto it.
    fn replace_disk(&mut self, _now: Time, _disk: usize) -> Result<(), VolumeError> {
        Err(VolumeError::Unsupported(self.kind()))
    }

    /// Multiplies member `disk`'s service times by `factor` (a "limping"
    /// drive; `1.0` restores nominal service).
    fn set_disk_slowdown(&mut self, _disk: usize, _factor: f64) -> Result<(), VolumeError> {
        Err(VolumeError::Unsupported(self.kind()))
    }

    /// Advances background work (rebuild) whose issue instants fall at or
    /// before `now`. Called by the volume itself on every foreground
    /// request; exposed so idle periods can also be covered.
    fn pump(&mut self, _now: Time) {}

    /// Progress of the current (or last) rebuild, if any ever ran.
    fn rebuild_report(&self) -> Option<RebuildReport> {
        None
    }

    /// Drives any in-flight rebuild to completion and returns the instant
    /// it finishes (`now` when nothing is rebuilding).
    fn finish_rebuild(&mut self, now: Time) -> Time {
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::BlockOp;

    #[test]
    fn meter_splits_directions() {
        let mut m = VolumeMeter::default();
        let g = IoGrant {
            start: Time::ZERO,
            ack: Time::from_millis(1),
            durable: Time::from_millis(1),
        };
        m.record(&BlockReq::read(0, 100), Time::ZERO, &g);
        m.record(&BlockReq::write(0, 300), Time::ZERO, &g);
        m.record(&BlockReq::write(300, 300), Time::ZERO, &g);
        assert_eq!(m.reads.bytes(), 100);
        assert_eq!(m.reads.ops(), 1);
        assert_eq!(m.writes.bytes(), 600);
        assert_eq!(m.writes.ops(), 2);
        assert!(!BlockOp::Read.is_write());
    }
}
