//! The [`Volume`] abstraction shared by JBOD, RAID engines and caches.

use crate::req::{BlockReq, IoGrant};
use serde::{Deserialize, Serialize};
use simcore::stats::TransferMeter;
use simcore::Time;

/// Transfer accounting for a volume, split by direction.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VolumeMeter {
    /// Read-side meter (bytes, rate, IOPs, latency).
    pub reads: TransferMeter,
    /// Write-side meter.
    pub writes: TransferMeter,
    /// Number of physical disk operations issued (parity and mirror
    /// traffic included), for write-amplification analysis.
    pub disk_ios: u64,
}

impl VolumeMeter {
    /// Records a logical request outcome.
    pub fn record(&mut self, req: &BlockReq, arrival: Time, grant: &IoGrant) {
        let meter = if req.op.is_write() {
            &mut self.writes
        } else {
            &mut self.reads
        };
        meter.record(req.len, grant.latency(arrival));
    }
}

/// A block volume: a logical byte address space with timed access.
///
/// Implementations must tolerate requests arriving in nondecreasing
/// simulation time; within that contract completion times are exact FIFO
/// queueing results.
pub trait Volume {
    /// Submits a request arriving at `now`; returns its completion times.
    fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant;

    /// Forces all previously acknowledged writes to stable media; returns
    /// the instant everything submitted so far is durable.
    fn flush(&mut self, now: Time) -> Time;

    /// Usable capacity in bytes (parity/mirror overhead excluded).
    fn capacity(&self) -> u64;

    /// Volume kind for reports (e.g. `"RAID 5"`).
    fn kind(&self) -> &'static str;

    /// Access statistics.
    fn meter(&self) -> &VolumeMeter;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::BlockOp;

    #[test]
    fn meter_splits_directions() {
        let mut m = VolumeMeter::default();
        let g = IoGrant {
            start: Time::ZERO,
            ack: Time::from_millis(1),
            durable: Time::from_millis(1),
        };
        m.record(&BlockReq::read(0, 100), Time::ZERO, &g);
        m.record(&BlockReq::write(0, 300), Time::ZERO, &g);
        m.record(&BlockReq::write(300, 300), Time::ZERO, &g);
        assert_eq!(m.reads.bytes(), 100);
        assert_eq!(m.reads.ops(), 1);
        assert_eq!(m.writes.bytes(), 600);
        assert_eq!(m.writes.ops(), 2);
        assert!(!BlockOp::Read.is_write());
    }
}
