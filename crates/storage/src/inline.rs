//! A small-vector type for allocation-free hot paths.
//!
//! [`InlineVec`] keeps up to `N` elements inline and spills to the heap
//! only beyond that. The striping engines size `N` to the widest member
//! arrays in the evaluated configurations, so per-request span computation
//! performs no allocation at all on the hot path. This is deliberately the
//! ~80-line subset of a small-vector crate that the storage engines need —
//! no new dependency is pulled in.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline before spilling to the heap.
///
/// Once spilled, all elements (including the former inline ones) live in
/// the heap buffer, so the contents are always one contiguous slice.
pub struct InlineVec<T, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        InlineVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// A vector holding `count` copies of `value`.
    pub fn filled(value: T, count: usize) -> Self {
        let mut v = InlineVec::new();
        for _ in 0..count {
            v.push(value);
        }
        v
    }

    /// Appends an element, spilling to the heap past `N` elements.
    pub fn push(&mut self, value: T) {
        if self.spilled() {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(value);
        }
    }

    /// Whether the contents have spilled to the heap.
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// The contents as a contiguous slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spilled() {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// The contents as a contiguous mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled() {
            &mut self.spill
        } else {
            &mut self.inline[..self.len]
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(&v[..], &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_preserving_order() {
        let mut v: InlineVec<u64, 4> = InlineVec::new();
        for i in 0..9 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 9);
        assert_eq!(&v[..], &[0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn filled_and_mutation_through_slice() {
        let mut v: InlineVec<u64, 8> = InlineVec::filled(0, 5);
        v[2] += 7;
        assert_eq!(&v[..], &[0, 0, 7, 0, 0]);
        assert!(!v.spilled());
    }

    #[test]
    fn debug_formats_as_slice() {
        let v: InlineVec<u64, 4> = InlineVec::filled(3, 2);
        assert_eq!(format!("{v:?}"), "[3, 3]");
    }
}
