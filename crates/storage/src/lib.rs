//! # storage — block-device and volume models
//!
//! Substrate for the I/O-device level of the paper's I/O path:
//!
//! * [`disk::Disk`] — a mechanical disk with seek/rotation/transfer timing
//!   and sequential-access detection; IOPs limits *emerge* from positioning
//!   costs instead of being configured.
//! * [`raid`] — JBOD, RAID 0, RAID 1 and RAID 5 volume engines over member
//!   disks, including RAID 5 parity placement (left-symmetric), full-stripe
//!   writes and the read-modify-write small-write penalty, with lazy parity
//!   coalescing for sequential streams (what a controller stripe cache does).
//! * [`cache::CachedVolume`] — a controller write-back cache in front of any
//!   volume, matching the paper's "write-cache enabled (write back)" RAID
//!   arrays: bursts are acknowledged at controller speed until the cache
//!   fills, sustained throughput converges to the backing volume.
//!
//! All engines implement the [`Volume`] trait, submit requests to member
//! disks through `simcore` timeline resources, and keep transfer meters so
//! characterization can read device-level rates.

pub mod cache;
pub mod disk;
pub mod inline;
pub mod raid;
pub mod req;
pub mod volume;

pub use cache::{CachedVolume, WriteCacheParams};
pub use disk::{Disk, DiskParams, SeqRunGrant};
pub use inline::InlineVec;
pub use raid::{Jbod, Raid0, Raid1, Raid5};
pub use req::{BlockOp, BlockReq, IoGrant};
pub use volume::{fast_path, RebuildReport, Volume, VolumeError, VolumeMeter};
