//! Block-level request and completion types.

use serde::{Deserialize, Serialize};
use simcore::Time;

/// Direction of a block operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockOp {
    /// Transfer from media to host.
    Read,
    /// Transfer from host to media.
    Write,
}

impl BlockOp {
    /// `true` for [`BlockOp::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, BlockOp::Write)
    }
}

/// A block-level I/O request against a volume's logical address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockReq {
    /// Operation direction.
    pub op: BlockOp,
    /// Logical byte offset within the volume.
    pub offset: u64,
    /// Length in bytes (must be nonzero).
    pub len: u64,
}

impl BlockReq {
    /// A read request.
    pub fn read(offset: u64, len: u64) -> Self {
        BlockReq {
            op: BlockOp::Read,
            offset,
            len,
        }
    }

    /// A write request.
    pub fn write(offset: u64, len: u64) -> Self {
        BlockReq {
            op: BlockOp::Write,
            offset,
            len,
        }
    }

    /// One-past-the-end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Completion information for a block request.
///
/// `ack` is when the submitter may proceed (for write-back caches this is
/// before the data is on stable media); `durable` is when the data is
/// actually persistent. For reads the two coincide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoGrant {
    /// When service began.
    pub start: Time,
    /// When the submitter observes completion.
    pub ack: Time,
    /// When the data is on stable media (`== ack` for reads).
    pub durable: Time,
}

impl IoGrant {
    /// A grant that starts and completes at the same instants.
    pub fn immediate(at: Time) -> Self {
        IoGrant {
            start: at,
            ack: at,
            durable: at,
        }
    }

    /// Combines two grants of parallel sub-operations: the combined request
    /// starts at the earlier start and completes when both complete.
    pub fn join(self, other: IoGrant) -> IoGrant {
        IoGrant {
            start: self.start.min(other.start),
            ack: self.ack.max(other.ack),
            durable: self.durable.max(other.durable),
        }
    }

    /// Latency from `arrival` to `ack`.
    pub fn latency(&self, arrival: Time) -> Time {
        self.ack.saturating_sub(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_constructors() {
        let r = BlockReq::read(100, 50);
        assert_eq!(r.op, BlockOp::Read);
        assert_eq!(r.end(), 150);
        let w = BlockReq::write(0, 8);
        assert!(w.op.is_write());
        assert!(!r.op.is_write());
    }

    #[test]
    fn grant_join_takes_envelope() {
        let a = IoGrant {
            start: Time::from_secs(1),
            ack: Time::from_secs(5),
            durable: Time::from_secs(6),
        };
        let b = IoGrant {
            start: Time::from_secs(2),
            ack: Time::from_secs(4),
            durable: Time::from_secs(9),
        };
        let j = a.join(b);
        assert_eq!(j.start, Time::from_secs(1));
        assert_eq!(j.ack, Time::from_secs(5));
        assert_eq!(j.durable, Time::from_secs(9));
    }

    #[test]
    fn grant_latency_saturates() {
        let g = IoGrant::immediate(Time::from_secs(3));
        assert_eq!(g.latency(Time::from_secs(1)), Time::from_secs(2));
        assert_eq!(g.latency(Time::from_secs(10)), Time::ZERO);
    }
}
