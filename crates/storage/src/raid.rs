//! JBOD and RAID volume engines.
//!
//! * [`Jbod`] — a single disk exposed as a volume (the paper's "JBOD
//!   configuration is single disk without redundancy").
//! * [`Raid0`] — striping, no redundancy.
//! * [`Raid1`] — mirroring; writes go to both members, reads are balanced
//!   across members with sequential affinity (a sequential stream stays on
//!   one member; concurrent streams spread over both).
//! * [`Raid5`] — block-interleaved distributed parity with the
//!   *left-symmetric* layout. Full-stripe writes update parity in place;
//!   small writes pay the classic read-modify-write penalty. Sequential
//!   partial writes are *coalesced*: parity for a stripe row is written once
//!   when the row fills (the job of a controller stripe cache), while
//!   abandoned partial rows are settled with an RMW.
//!
//! Address mapping is exact and property-tested ([`raid5_locate`]); command
//! *submission* aggregates per-disk contiguous spans so a 162 MB request
//! costs a handful of disk commands instead of hundreds, without changing
//! the timing model (the spans are physically contiguous on each member).

use crate::disk::Disk;
use crate::inline::InlineVec;
use crate::req::{BlockOp, BlockReq, IoGrant};
use crate::volume::{fast_path, RebuildReport, Volume, VolumeError, VolumeMeter};
use simcore::Time;

/// Member-local bytes reconstructed per background rebuild pass.
const REBUILD_BATCH: u64 = 4 * 1024 * 1024;

/// Inline capacity for per-member scratch arrays: sized to the widest
/// arrays in the evaluated configurations so striping never allocates.
const MAX_INLINE_MEMBERS: usize = 8;

/// Per-member outcome of a closed-form bulk run: the normally positioned
/// first command plus the uniform service time of its sequential followers.
#[derive(Clone, Copy, Debug, Default)]
struct MemberRun {
    start: Time,
    first_ack: Time,
    service: Time,
}

impl MemberRun {
    /// Completion of the member's `i`-th command (0-based).
    fn ack(&self, i: u64) -> Time {
        self.first_ack + self.service * i
    }

    /// Start of the member's `i`-th command; followers run back-to-back.
    fn start_of(&self, i: u64) -> Time {
        if i == 0 {
            self.start
        } else {
            self.ack(i - 1)
        }
    }
}

/// Issues `count` equal chunk commands per member `(disk, first offset,
/// piece length)`: the first through [`Disk::submit`] (normal positioning
/// and RNG), the remaining `count - 1` collapsed through
/// [`Disk::submit_seq_run`]. Members are visited in the order given — the
/// order the granular loop submits in — so per-disk command sequences and
/// RNG draws are identical to `count` chunked submissions.
fn run_members<'a>(
    members: impl Iterator<Item = (&'a mut Disk, u64, u64)>,
    now: Time,
    op: BlockOp,
    count: u64,
) -> InlineVec<MemberRun, MAX_INLINE_MEMBERS> {
    let mut runs = InlineVec::new();
    for (disk, off, piece) in members {
        let first = disk.submit(
            now,
            BlockReq {
                op,
                offset: off,
                len: piece,
            },
        );
        let service = if count > 1 {
            disk.submit_seq_run(now, op, off + piece, piece, count - 1)
                .service
        } else {
            Time::ZERO
        };
        runs.push(MemberRun {
            start: first.start,
            first_ack: first.ack,
            service,
        });
    }
    runs
}

/// Replays the per-chunk logical grants the granular loop would have
/// recorded (identical arrivals, identical join order) and returns the
/// envelope grant of the whole run.
fn record_chunks(
    meter: &mut VolumeMeter,
    runs: &[MemberRun],
    now: Time,
    op: BlockOp,
    offset: u64,
    chunk: u64,
    count: u64,
) -> IoGrant {
    let mut envelope: Option<IoGrant> = None;
    for i in 0..count {
        let mut grant: Option<IoGrant> = None;
        for r in runs {
            let part = IoGrant {
                start: r.start_of(i),
                ack: r.ack(i),
                durable: r.ack(i),
            };
            grant = Some(match grant {
                Some(acc) => acc.join(part),
                None => part,
            });
        }
        let grant = grant.expect("bulk run has members");
        meter.record(
            &BlockReq {
                op,
                offset: offset + i * chunk,
                len: chunk,
            },
            now,
            &grant,
        );
        meter.disk_ios += runs.len() as u64;
        envelope = Some(match envelope {
            Some(acc) => acc.join(grant),
            None => grant,
        });
    }
    envelope.expect("bulk run has chunks")
}

/// Conservative completion bound for a member running `count` commands of
/// `piece` bytes from `now`: one worst-case positioning (the sequential
/// followers position for free) plus per-command overhead and media time.
/// Used only to keep closed-form runs from crossing the fault horizon;
/// overshooting merely falls back to the granular path.
fn member_bound(disk: &Disk, now: Time, op: BlockOp, piece: u64, count: u64) -> Time {
    let p = disk.params();
    let bw = if op.is_write() { p.write_bw } else { p.read_bw };
    now.max(disk.free_at())
        + p.avg_seek * 2
        + p.full_revolution
        + (p.cmd_overhead + bw.time_for(piece)) * count
}

/// Whether a run bounded by `bound` stays clear of the fault horizon.
fn horizon_allows(horizon: Option<Time>, bound: Time) -> bool {
    horizon.is_none_or(|h| bound < h)
}

/// Number of `x` in `[a, b]` with `x % n == m`.
fn count_mod(a: u64, b: u64, n: u64, m: u64) -> u64 {
    if a > b {
        return 0;
    }
    let first = a + (m + n - a % n) % n;
    if first > b {
        0
    } else {
        (b - first) / n + 1
    }
}

/// Background rebuild of a replacement member.
///
/// Rebuild I/O is *lazily pumped*: whenever foreground work observes
/// simulated time `now`, all rebuild batches whose issue instants fall at
/// or before `now` are submitted first. Each batch reads the batch extent
/// from every surviving member, writes the reconstructed data to the
/// replacement, and schedules the next batch at its completion — so
/// rebuild traffic competes with foreground I/O on the member FIFO
/// timelines exactly as a `md`-style resync does, while submissions stay
/// nondecreasing in time.
///
/// Only the written extent of the array is resilvered (bitmap-assisted
/// resync), so rebuild duration is proportional to the data footprint.
#[derive(Clone, Copy, Debug)]
struct Rebuilder {
    /// Member being rebuilt onto.
    target: usize,
    /// Next member-local offset to reconstruct.
    next_off: u64,
    /// Issue instant of the next batch (completion of the previous one).
    next_issue: Time,
    /// Externally visible progress.
    report: RebuildReport,
}

impl Rebuilder {
    fn new(target: usize, total: u64, now: Time) -> Rebuilder {
        Rebuilder {
            target,
            next_off: 0,
            next_issue: now,
            report: RebuildReport {
                started: now,
                finished: None,
                bytes_done: 0,
                bytes_total: total,
            },
        }
    }

    fn running(&self) -> bool {
        self.report.finished.is_none()
    }
}

/// Location of one logical byte range inside a RAID 5 array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Raid5Chunk {
    /// Stripe row index.
    pub row: u64,
    /// Member disk holding the data.
    pub disk: usize,
    /// Byte offset on that member disk.
    pub disk_offset: u64,
    /// Member disk holding the row's parity.
    pub parity_disk: usize,
}

/// Maps a logical byte offset to its RAID 5 location (left-symmetric layout:
/// parity rotates from the last disk downward; data chunks follow the parity
/// disk cyclically).
///
/// Geometry is assumed valid; configuration paths validate through
/// [`try_raid5_locate`] or [`Raid5::try_new`] instead of panicking.
pub fn raid5_locate(offset: u64, stripe: u64, n_disks: usize) -> Raid5Chunk {
    try_raid5_locate(offset, stripe, n_disks).expect("invalid RAID 5 geometry")
}

/// Fallible form of [`raid5_locate`]: rejects arrays of fewer than three
/// members and zero stripe sizes with a typed error instead of panicking.
pub fn try_raid5_locate(
    offset: u64,
    stripe: u64,
    n_disks: usize,
) -> Result<Raid5Chunk, VolumeError> {
    if n_disks < 3 {
        return Err(VolumeError::TooFewMembers {
            kind: "RAID 5",
            need: 3,
            got: n_disks,
        });
    }
    if stripe == 0 {
        return Err(VolumeError::ZeroStripe);
    }
    let n = n_disks as u64;
    let row_width = (n - 1) * stripe;
    let row = offset / row_width;
    let within = offset % row_width;
    let chunk = within / stripe;
    let off_in_chunk = within % stripe;
    let parity = (n - 1) - (row % n);
    let disk = (parity + 1 + chunk) % n;
    Ok(Raid5Chunk {
        row,
        disk: disk as usize,
        disk_offset: row * stripe + off_in_chunk,
        parity_disk: parity as usize,
    })
}

/// A single-disk volume.
pub struct Jbod {
    disk: Disk,
    meter: VolumeMeter,
    fault_horizon: Option<Time>,
    bulk_enabled: bool,
    bulk_hits: u64,
    bulk_misses: u64,
}

impl Jbod {
    /// Wraps `disk` as a volume.
    pub fn new(disk: Disk) -> Jbod {
        Jbod {
            disk,
            meter: VolumeMeter::default(),
            fault_horizon: None,
            bulk_enabled: true,
            bulk_hits: 0,
            bulk_misses: 0,
        }
    }
}

impl Volume for Jbod {
    fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant {
        let grant = self.disk.submit(now, req);
        self.meter.record(&req, now, &grant);
        self.meter.disk_ios += 1;
        grant
    }

    fn try_bulk_run(&mut self, now: Time, req: BlockReq, chunk: u64) -> Option<IoGrant> {
        let full = req.len / chunk;
        let ok = fast_path::bulk_enabled()
            && self.bulk_enabled
            && full >= 2
            && self.disk.slow_factor() == 1.0
            && horizon_allows(
                self.fault_horizon,
                member_bound(&self.disk, now, req.op, chunk, full),
            );
        if !ok {
            self.bulk_misses += 1;
            return None;
        }
        self.bulk_hits += 1;
        let runs = run_members(
            std::iter::once((&mut self.disk, req.offset, chunk)),
            now,
            req.op,
            full,
        );
        let mut grant = record_chunks(&mut self.meter, &runs, now, req.op, req.offset, chunk, full);
        let tail = req.len % chunk;
        if tail > 0 {
            grant = grant.join(self.submit(
                now,
                BlockReq {
                    op: req.op,
                    offset: req.offset + full * chunk,
                    len: tail,
                },
            ));
        }
        Some(grant)
    }

    fn set_fault_horizon(&mut self, horizon: Option<Time>) {
        self.fault_horizon = horizon;
    }

    fn set_bulk_enabled(&mut self, on: bool) {
        self.bulk_enabled = on;
    }

    fn bulk_run_stats(&self) -> (u64, u64) {
        (self.bulk_hits, self.bulk_misses)
    }

    fn flush(&mut self, _now: Time) -> Time {
        self.disk.free_at()
    }

    fn capacity(&self) -> u64 {
        self.disk.params().capacity
    }

    fn kind(&self) -> &'static str {
        "JBOD"
    }

    fn meter(&self) -> &VolumeMeter {
        &self.meter
    }

    // JBOD has no redundancy: a member failure is data loss, so only the
    // slow-down fault is honoured.
    fn set_disk_slowdown(&mut self, disk: usize, factor: f64) -> Result<(), VolumeError> {
        if disk != 0 {
            return Err(VolumeError::UnknownMember { disk, members: 1 });
        }
        self.disk.set_slow_factor(factor);
        Ok(())
    }
}

/// A striped (RAID 0) volume.
pub struct Raid0 {
    disks: Vec<Disk>,
    stripe: u64,
    meter: VolumeMeter,
    fault_horizon: Option<Time>,
    bulk_enabled: bool,
    bulk_hits: u64,
    bulk_misses: u64,
}

impl Raid0 {
    /// Builds a stripe set over `disks` with the given chunk size.
    ///
    /// Panics on invalid geometry; configuration paths should prefer
    /// [`Raid0::try_new`].
    pub fn new(disks: Vec<Disk>, stripe: u64) -> Raid0 {
        Raid0::try_new(disks, stripe).expect("invalid RAID 0 geometry")
    }

    /// Fallible constructor: rejects fewer than two members or a zero
    /// stripe with a typed error.
    pub fn try_new(disks: Vec<Disk>, stripe: u64) -> Result<Raid0, VolumeError> {
        if disks.len() < 2 {
            return Err(VolumeError::TooFewMembers {
                kind: "RAID 0",
                need: 2,
                got: disks.len(),
            });
        }
        if stripe == 0 {
            return Err(VolumeError::ZeroStripe);
        }
        Ok(Raid0 {
            disks,
            stripe,
            meter: VolumeMeter::default(),
            fault_horizon: None,
            bulk_enabled: true,
            bulk_hits: 0,
            bulk_misses: 0,
        })
    }

    /// Per-disk contiguous spans covering `req` (member, offset, len), in
    /// member order. Closed form: the stripe chunks member `d` serves form
    /// an arithmetic progression, so its span is delimited by its first and
    /// last owned chunk — no per-chunk walk, and no allocation for arrays
    /// of up to [`MAX_INLINE_MEMBERS`] members.
    pub fn spans(&self, req: &BlockReq) -> InlineVec<(usize, u64, u64), MAX_INLINE_MEMBERS> {
        let n = self.disks.len() as u64;
        let end = req.end();
        let c0 = req.offset / self.stripe;
        let c1 = (end - 1) / self.stripe;
        let mut out = InlineVec::new();
        for d in 0..n {
            // First and last chunk indices in [c0, c1] owned by member d
            // (chunk c lives on member c % n).
            let first = c0 + (d + n - c0 % n) % n;
            if first > c1 {
                continue;
            }
            let last = c1 - (c1 % n + n - d) % n;
            let start = (first / n) * self.stripe
                + if first == c0 {
                    req.offset % self.stripe
                } else {
                    0
                };
            let stop = (last / n) * self.stripe
                + if last == c1 {
                    (end - 1) % self.stripe + 1
                } else {
                    self.stripe
                };
            out.push((d as usize, start, stop - start));
        }
        out
    }
}

impl Volume for Raid0 {
    fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant {
        let mut grant: Option<IoGrant> = None;
        for &(disk, off, len) in self.spans(&req).iter() {
            let g = self.disks[disk].submit(
                now,
                BlockReq {
                    op: req.op,
                    offset: off,
                    len,
                },
            );
            self.meter.disk_ios += 1;
            grant = Some(match grant {
                Some(acc) => acc.join(g),
                None => g,
            });
        }
        let grant = grant.expect("nonzero request produced no spans");
        self.meter.record(&req, now, &grant);
        grant
    }

    fn flush(&mut self, _now: Time) -> Time {
        self.disks
            .iter()
            .map(|d| d.free_at())
            .max()
            .unwrap_or(Time::ZERO)
    }

    fn capacity(&self) -> u64 {
        self.disks.iter().map(|d| d.params().capacity).sum()
    }

    fn kind(&self) -> &'static str {
        "RAID 0"
    }

    fn meter(&self) -> &VolumeMeter {
        &self.meter
    }

    fn try_bulk_run(&mut self, now: Time, req: BlockReq, chunk: u64) -> Option<IoGrant> {
        let n = self.disks.len() as u64;
        let width = n * self.stripe;
        let full = req.len / chunk;
        let piece = chunk / n;
        let ok = fast_path::bulk_enabled()
            && self.bulk_enabled
            && full >= 2
            && req.offset.is_multiple_of(width)
            && chunk.is_multiple_of(width)
            && self.disks.iter().all(|d| d.slow_factor() == 1.0)
            && horizon_allows(
                self.fault_horizon,
                self.disks
                    .iter()
                    .map(|d| member_bound(d, now, req.op, piece, full))
                    .max()
                    .unwrap_or(now),
            );
        if !ok {
            self.bulk_misses += 1;
            return None;
        }
        self.bulk_hits += 1;
        // Width-aligned chunks split evenly: every member serves piece
        // `chunk / n` at member offset `req.offset / n`, per chunk.
        let base = req.offset / n;
        let runs = run_members(
            self.disks.iter_mut().map(|d| (d, base, piece)),
            now,
            req.op,
            full,
        );
        let mut grant = record_chunks(&mut self.meter, &runs, now, req.op, req.offset, chunk, full);
        let tail = req.len % chunk;
        if tail > 0 {
            grant = grant.join(self.submit(
                now,
                BlockReq {
                    op: req.op,
                    offset: req.offset + full * chunk,
                    len: tail,
                },
            ));
        }
        Some(grant)
    }

    fn set_fault_horizon(&mut self, horizon: Option<Time>) {
        self.fault_horizon = horizon;
    }

    fn set_bulk_enabled(&mut self, on: bool) {
        self.bulk_enabled = on;
    }

    fn bulk_run_stats(&self) -> (u64, u64) {
        (self.bulk_hits, self.bulk_misses)
    }

    // RAID 0 has no redundancy either; only slow-downs are injectable.
    fn set_disk_slowdown(&mut self, disk: usize, factor: f64) -> Result<(), VolumeError> {
        match self.disks.get_mut(disk) {
            Some(d) => {
                d.set_slow_factor(factor);
                Ok(())
            }
            None => Err(VolumeError::UnknownMember {
                disk,
                members: self.disks.len(),
            }),
        }
    }
}

/// A mirrored (RAID 1) volume over two members.
pub struct Raid1 {
    disks: [Box<Disk>; 2],
    meter: VolumeMeter,
    last_read_end: [Option<u64>; 2],
    /// Rolling best reader: `(end offset, member)` of the most recent read,
    /// with the scan's member-0 tie rule already applied. A sequential
    /// stream hits this without rescanning the members.
    seq_hint: Option<(u64, usize)>,
    /// A failed member (degraded mode), if any.
    failed: Option<usize>,
    rebuild: Option<Rebuilder>,
    /// Highest logical byte ever addressed — the extent a rebuild covers.
    high_water: u64,
    fault_horizon: Option<Time>,
    bulk_enabled: bool,
    bulk_hits: u64,
    bulk_misses: u64,
}

impl Raid1 {
    /// Builds a mirror pair.
    pub fn new(primary: Disk, mirror: Disk) -> Raid1 {
        Raid1 {
            disks: [Box::new(primary), Box::new(mirror)],
            meter: VolumeMeter::default(),
            last_read_end: [None, None],
            seq_hint: None,
            failed: None,
            rebuild: None,
            high_water: 0,
            fault_horizon: None,
            bulk_enabled: true,
            bulk_hits: 0,
            bulk_misses: 0,
        }
    }

    /// The failed member, if any.
    pub fn failed_disk(&self) -> Option<usize> {
        self.failed
    }

    /// Cumulative command counts per member (mirror balance analysis).
    pub fn member_ios(&self) -> [u64; 2] {
        [self.disks[0].ios(), self.disks[1].ios()]
    }

    /// Read balancing: a dead member never serves; otherwise prefer the
    /// member whose head is already positioned (sequential affinity), then
    /// the member that frees up earliest. The rolling `seq_hint` answers
    /// the common sequential-stream case in O(1); the scan below only runs
    /// on hint misses and is behaviour-identical to checking both members
    /// in index order.
    fn pick_reader(&self, offset: u64) -> usize {
        if let Some(f) = self.failed {
            return 1 - f;
        }
        if let Some((end, d)) = self.seq_hint {
            if end == offset {
                return d;
            }
        }
        for (i, end) in self.last_read_end.iter().enumerate() {
            if *end == Some(offset) {
                return i;
            }
        }
        if self.disks[0].free_at() <= self.disks[1].free_at() {
            0
        } else {
            1
        }
    }

    /// Updates the rolling reader hint after a read on member `d` ending at
    /// `end`, applying the scan's tie rule (member 0 wins when both heads
    /// sit at `end`) so a later hint hit picks the same member the scan
    /// would have.
    fn note_read(&mut self, d: usize, end: u64) {
        let hint = if d == 1 && self.last_read_end[0] == Some(end) {
            0
        } else {
            d
        };
        self.seq_hint = Some((end, hint));
        self.last_read_end[d] = Some(end);
    }
}

impl Volume for Raid1 {
    fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant {
        self.pump(now);
        self.high_water = self.high_water.max(req.end());
        let grant = match req.op {
            BlockOp::Write => match self.failed {
                // Degraded: only the survivor takes the write.
                Some(f) => {
                    let g = self.disks[1 - f].submit(now, req);
                    self.meter.disk_ios += 1;
                    g
                }
                None => {
                    // Both members must be written; ack when both complete.
                    let g0 = self.disks[0].submit(now, req);
                    let g1 = self.disks[1].submit(now, req);
                    self.meter.disk_ios += 2;
                    g0.join(g1)
                }
            },
            BlockOp::Read => {
                let d = self.pick_reader(req.offset);
                let g = self.disks[d].submit(now, req);
                self.note_read(d, req.end());
                self.meter.disk_ios += 1;
                g
            }
        };
        self.meter.record(&req, now, &grant);
        grant
    }

    fn flush(&mut self, now: Time) -> Time {
        self.pump(now);
        self.disks[0].free_at().max(self.disks[1].free_at())
    }

    fn capacity(&self) -> u64 {
        self.disks[0]
            .params()
            .capacity
            .min(self.disks[1].params().capacity)
    }

    fn kind(&self) -> &'static str {
        "RAID 1"
    }

    fn meter(&self) -> &VolumeMeter {
        &self.meter
    }

    fn fail_disk(&mut self, disk: usize) -> Result<(), VolumeError> {
        if disk >= 2 {
            return Err(VolumeError::UnknownMember { disk, members: 2 });
        }
        if let Some(failed) = self.failed {
            return Err(VolumeError::AlreadyDegraded { failed });
        }
        self.failed = Some(disk);
        self.last_read_end[disk] = None;
        if self.seq_hint.is_some_and(|(_, d)| d == disk) {
            self.seq_hint = None;
        }
        Ok(())
    }

    fn replace_disk(&mut self, now: Time, disk: usize) -> Result<(), VolumeError> {
        if disk >= 2 {
            return Err(VolumeError::UnknownMember { disk, members: 2 });
        }
        if self.rebuild.is_some_and(|rb| rb.running()) {
            return Err(VolumeError::RebuildInProgress);
        }
        if self.failed != Some(disk) {
            return Err(VolumeError::NotFailed { disk });
        }
        self.disks[disk].swap_fresh();
        let total = self.high_water;
        let mut rb = Rebuilder::new(disk, total, now);
        if total == 0 {
            rb.report.finished = Some(now);
            self.failed = None;
        }
        self.rebuild = Some(rb);
        Ok(())
    }

    fn set_disk_slowdown(&mut self, disk: usize, factor: f64) -> Result<(), VolumeError> {
        if disk >= 2 {
            return Err(VolumeError::UnknownMember { disk, members: 2 });
        }
        self.disks[disk].set_slow_factor(factor);
        Ok(())
    }

    fn try_bulk_run(&mut self, now: Time, req: BlockReq, chunk: u64) -> Option<IoGrant> {
        let full = req.len / chunk;
        let ok = fast_path::bulk_enabled()
            && self.bulk_enabled
            && req.op.is_write()
            && full >= 2
            && self.failed.is_none()
            && !self.rebuild.is_some_and(|rb| rb.running())
            && self.disks.iter().all(|d| d.slow_factor() == 1.0)
            && horizon_allows(
                self.fault_horizon,
                self.disks
                    .iter()
                    .map(|d| member_bound(d, now, req.op, chunk, full))
                    .max()
                    .unwrap_or(now),
            );
        if !ok {
            self.bulk_misses += 1;
            return None;
        }
        self.bulk_hits += 1;
        // pump() is a no-op here (no running rebuild, by eligibility).
        self.high_water = self.high_water.max(req.offset + full * chunk);
        let runs = run_members(
            self.disks.iter_mut().map(|d| (&mut **d, req.offset, chunk)),
            now,
            req.op,
            full,
        );
        let mut grant = record_chunks(&mut self.meter, &runs, now, req.op, req.offset, chunk, full);
        let tail = req.len % chunk;
        if tail > 0 {
            grant = grant.join(self.submit(
                now,
                BlockReq {
                    op: req.op,
                    offset: req.offset + full * chunk,
                    len: tail,
                },
            ));
        }
        Some(grant)
    }

    fn set_fault_horizon(&mut self, horizon: Option<Time>) {
        self.fault_horizon = horizon;
    }

    fn set_bulk_enabled(&mut self, on: bool) {
        self.bulk_enabled = on;
    }

    fn bulk_run_stats(&self) -> (u64, u64) {
        (self.bulk_hits, self.bulk_misses)
    }

    fn pump(&mut self, now: Time) {
        let Some(mut rb) = self.rebuild else { return };
        if !rb.running() {
            return;
        }
        while rb.next_off < rb.report.bytes_total && rb.next_issue <= now {
            let take = REBUILD_BATCH.min(rb.report.bytes_total - rb.next_off);
            let issue = rb.next_issue;
            let r = self.disks[1 - rb.target].submit(issue, BlockReq::read(rb.next_off, take));
            let w = self.disks[rb.target].submit(r.ack, BlockReq::write(rb.next_off, take));
            self.meter.disk_ios += 2;
            rb.next_off += take;
            rb.report.bytes_done += take;
            rb.next_issue = w.ack;
        }
        if rb.next_off >= rb.report.bytes_total {
            rb.report.finished = Some(rb.next_issue);
            self.failed = None;
        }
        self.rebuild = Some(rb);
    }

    fn rebuild_report(&self) -> Option<RebuildReport> {
        self.rebuild.map(|rb| rb.report)
    }

    fn finish_rebuild(&mut self, now: Time) -> Time {
        self.pump(Time::MAX);
        match self.rebuild {
            Some(rb) => rb.report.finished.map_or(now, |f| f.max(now)),
            None => now,
        }
    }
}

/// A partially filled stripe row awaiting its parity write.
#[derive(Clone, Copy, Debug)]
struct OpenRow {
    row: u64,
    /// Covered byte range within the row (relative to row start).
    covered_from: u64,
    covered_to: u64,
}

/// A RAID 5 volume with distributed parity.
pub struct Raid5 {
    disks: Vec<Disk>,
    stripe: u64,
    meter: VolumeMeter,
    open_row: Option<OpenRow>,
    /// Whether sequential partial writes defer parity until the row fills
    /// (controller stripe-cache behaviour). Disabled → every partial write
    /// pays an immediate RMW.
    coalesce: bool,
    /// Count of read-modify-write parity settlements (for ablation reports).
    rmw_count: u64,
    /// A failed member (degraded mode), if any.
    failed: Option<usize>,
    rebuild: Option<Rebuilder>,
    /// Highest logical byte ever addressed — the extent a rebuild covers.
    high_water: u64,
    fault_horizon: Option<Time>,
    bulk_enabled: bool,
    bulk_hits: u64,
    bulk_misses: u64,
}

impl Raid5 {
    /// Builds an array over `disks` (≥ 3) with the given stripe chunk size.
    ///
    /// Panics on invalid geometry; configuration paths should prefer
    /// [`Raid5::try_new`].
    pub fn new(disks: Vec<Disk>, stripe: u64, coalesce: bool) -> Raid5 {
        Raid5::try_new(disks, stripe, coalesce).expect("invalid RAID 5 geometry")
    }

    /// Fallible constructor: rejects fewer than three members or a zero
    /// stripe with a typed error.
    pub fn try_new(disks: Vec<Disk>, stripe: u64, coalesce: bool) -> Result<Raid5, VolumeError> {
        if disks.len() < 3 {
            return Err(VolumeError::TooFewMembers {
                kind: "RAID 5",
                need: 3,
                got: disks.len(),
            });
        }
        if stripe == 0 {
            return Err(VolumeError::ZeroStripe);
        }
        Ok(Raid5 {
            disks,
            stripe,
            meter: VolumeMeter::default(),
            open_row: None,
            coalesce,
            rmw_count: 0,
            failed: None,
            rebuild: None,
            high_water: 0,
            fault_horizon: None,
            bulk_enabled: true,
            bulk_hits: 0,
            bulk_misses: 0,
        })
    }

    /// Number of parity read-modify-write settlements performed.
    pub fn rmw_count(&self) -> u64 {
        self.rmw_count
    }

    /// The failed member, if any.
    pub fn failed_disk(&self) -> Option<usize> {
        self.failed
    }

    /// Cumulative command counts per member (used by the degraded-mode
    /// property tests to check exactly the survivors are touched).
    pub fn member_ios(&self) -> InlineVec<u64, MAX_INLINE_MEMBERS> {
        let mut ios = InlineVec::new();
        for d in &self.disks {
            ios.push(d.ios());
        }
        ios
    }

    /// Per-member byte shares of a read span, in closed form: the at most
    /// two partial rows at the edges are chunk-walked, while the full rows
    /// in between contribute `stripe` bytes per row to every member except
    /// where the row's parity lands (left-symmetric: row `r`'s parity sits
    /// on member `n - 1 - (r % n)`). Totals are identical to walking the
    /// whole span chunk by chunk.
    fn read_shares(&self, req: &BlockReq) -> InlineVec<u64, MAX_INLINE_MEMBERS> {
        let n = self.disks.len();
        let rw = self.row_width();
        let end = req.end();
        let mut per_disk = InlineVec::filled(0u64, n);
        let walk = |per_disk: &mut InlineVec<u64, MAX_INLINE_MEMBERS>, from: u64, to: u64| {
            let mut pos = from;
            while pos < to {
                let loc = raid5_locate(pos, self.stripe, n);
                let take = (self.stripe - (pos % self.stripe)).min(to - pos);
                per_disk[loc.disk] += take;
                pos += take;
            }
        };
        // Rows [first_full, full_end) are fully covered by the span.
        let first_full = req.offset.div_ceil(rw);
        let full_end = end / rw;
        if first_full < full_end {
            walk(&mut per_disk, req.offset, first_full * rw);
            let rows = full_end - first_full;
            for (d, share) in per_disk.iter_mut().enumerate() {
                let parity_rows = count_mod(first_full, full_end - 1, n as u64, (n - 1 - d) as u64);
                *share += self.stripe * (rows - parity_rows);
            }
            walk(&mut per_disk, full_end * rw, end);
        } else {
            walk(&mut per_disk, req.offset, end);
        }
        per_disk
    }

    /// Member-local extent a rebuild must cover for the current write
    /// high-water mark: every stripe row that carries addressed data.
    fn member_extent(&self) -> u64 {
        self.high_water.div_ceil(self.row_width()) * self.stripe
    }

    fn n(&self) -> u64 {
        self.disks.len() as u64
    }

    fn row_width(&self) -> u64 {
        (self.n() - 1) * self.stripe
    }

    fn parity_disk(&self, row: u64) -> usize {
        ((self.n() - 1) - (row % self.n())) as usize
    }

    /// Writes the parity chunk of `row` (skipped when the parity member is
    /// the failed disk — the row is then unprotected, as on real arrays).
    fn write_parity(&mut self, now: Time, row: u64) -> IoGrant {
        let p = self.parity_disk(row);
        if Some(p) == self.failed {
            return IoGrant::immediate(now);
        }
        let g = self.disks[p].submit(now, BlockReq::write(row * self.stripe, self.stripe));
        self.meter.disk_ios += 1;
        g
    }

    /// Settles an abandoned partial row with a read-modify-write: read old
    /// parity and one old data chunk, then write the new parity.
    fn settle_rmw(&mut self, now: Time, row: OpenRow) -> Time {
        self.rmw_count += 1;
        let p = self.parity_disk(row.row);
        if Some(p) == self.failed {
            // No surviving parity for this row: nothing to settle.
            return now;
        }
        let touched = raid5_locate(
            row.row * self.row_width() + row.covered_from,
            self.stripe,
            self.disks.len(),
        );
        let r1 = self.disks[p].submit(now, BlockReq::read(row.row * self.stripe, self.stripe));
        self.meter.disk_ios += 1;
        let mut ready = r1.ack;
        if Some(touched.disk) != self.failed {
            let r2 = self.disks[touched.disk]
                .submit(now, BlockReq::read(row.row * self.stripe, self.stripe));
            self.meter.disk_ios += 1;
            ready = ready.max(r2.ack);
        }
        let w = self.disks[p].submit(ready, BlockReq::write(row.row * self.stripe, self.stripe));
        self.meter.disk_ios += 1;
        w.ack
    }

    /// Closes the open row if `keep` does not refer to it.
    fn settle_open_row_unless(&mut self, now: Time, keep: Option<u64>) {
        if let Some(open) = self.open_row {
            if keep != Some(open.row) {
                self.open_row = None;
                self.settle_rmw(now, open);
            }
        }
    }

    /// Handles the partially covered head/tail row of a write.
    fn write_partial_row(&mut self, now: Time, row: u64, from: u64, to: u64) -> IoGrant {
        // Write the new data chunks (exact chunk-level submission).
        let mut grant: Option<IoGrant> = None;
        let mut pos = from;
        while pos < to {
            let loc = raid5_locate(row * self.row_width() + pos, self.stripe, self.disks.len());
            let take = (self.stripe - (pos % self.stripe)).min(to - pos);
            if Some(loc.disk) != self.failed {
                let g = self.disks[loc.disk].submit(now, BlockReq::write(loc.disk_offset, take));
                self.meter.disk_ios += 1;
                grant = Some(match grant {
                    Some(acc) => acc.join(g),
                    None => g,
                });
            }
            pos += take;
        }
        let data_grant = grant.unwrap_or(IoGrant::immediate(now));

        if !self.coalesce {
            let done = self.settle_rmw(
                now,
                OpenRow {
                    row,
                    covered_from: from,
                    covered_to: to,
                },
            );
            return IoGrant {
                start: data_grant.start,
                ack: data_grant.ack.max(done),
                durable: data_grant.durable.max(done),
            };
        }

        // Coalescing: extend or open the pending row.
        match &mut self.open_row {
            Some(open) if open.row == row && open.covered_to == from => {
                open.covered_to = to;
            }
            Some(open) if open.row == row && to == open.covered_from => {
                open.covered_from = from;
            }
            Some(_) => {
                let old = self.open_row.take().expect("checked above");
                self.settle_rmw(now, old);
                self.open_row = Some(OpenRow {
                    row,
                    covered_from: from,
                    covered_to: to,
                });
            }
            None => {
                self.open_row = Some(OpenRow {
                    row,
                    covered_from: from,
                    covered_to: to,
                });
            }
        }
        // Row completed by this extension → write parity, close it.
        if let Some(open) = self.open_row {
            if open.covered_from == 0 && open.covered_to == self.row_width() {
                self.open_row = None;
                let pg = self.write_parity(now, open.row);
                return data_grant.join(pg);
            }
        }
        data_grant
    }
}

impl Volume for Raid5 {
    fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant {
        // Rebuild batches due by `now` go in first so member submissions
        // stay nondecreasing and foreground work queues behind them.
        self.pump(now);
        self.high_water = self.high_water.max(req.end());
        let rw = self.row_width();
        let first_row = req.offset / rw;
        let last_row = (req.end() - 1) / rw;

        let grant = match req.op {
            BlockOp::Read => {
                // Settle any pending parity before reads of the same area
                // would observe stale parity; cheap conservatism.
                self.settle_open_row_unless(now, None);
                // Aggregate per-disk: each member holds (n-1)/n of the span
                // as physically contiguous data+gap regions; issue one span
                // per member sized by its share (computed in closed form).
                let per_disk = self.read_shares(&req);
                let base = first_row * self.stripe;
                let mut grant: Option<IoGrant> = None;
                // Degraded mode: the failed member's share is rebuilt from
                // parity, which costs an equal-sized read on every survivor.
                let rebuild = self.failed.map(|f| per_disk[f]).unwrap_or(0);
                for (d, bytes) in per_disk.iter().enumerate() {
                    if Some(d) == self.failed {
                        continue;
                    }
                    let amount = bytes + rebuild;
                    if amount == 0 {
                        continue;
                    }
                    let g = self.disks[d].submit(now, BlockReq::read(base, amount));
                    self.meter.disk_ios += 1;
                    grant = Some(match grant {
                        Some(acc) => acc.join(g),
                        None => g,
                    });
                }
                grant.expect("nonzero read produced no spans")
            }
            BlockOp::Write => {
                // A write to some other row abandons the open partial row.
                self.settle_open_row_unless(now, Some(first_row));

                let mut grant: Option<IoGrant> = None;
                let join = |acc: &mut Option<IoGrant>, g: IoGrant| {
                    *acc = Some(match acc.take() {
                        Some(a) => a.join(g),
                        None => g,
                    });
                };

                // Head partial row.
                let head_from = req.offset % rw;
                let mut full_first = first_row;
                if head_from != 0 || req.end() < (first_row + 1) * rw {
                    let to = (req.end() - first_row * rw).min(rw);
                    let g = self.write_partial_row(now, first_row, head_from, to);
                    join(&mut grant, g);
                    full_first += 1;
                }

                // Tail partial row (distinct from head).
                let tail_to = req.end() % rw;
                let mut full_last = last_row;
                if last_row >= full_first && tail_to != 0 {
                    let g = self.write_partial_row(now, last_row, 0, tail_to);
                    join(&mut grant, g);
                    full_last = last_row.saturating_sub(1);
                }

                // Full rows [full_first, full_last]: every member writes one
                // contiguous span (data chunks + its rotating parity chunks).
                if full_first <= full_last {
                    let rows = full_last - full_first + 1;
                    let base = full_first * self.stripe;
                    let len = rows * self.stripe;
                    for d in 0..self.disks.len() {
                        if Some(d) == self.failed {
                            continue;
                        }
                        let g = self.disks[d].submit(now, BlockReq::write(base, len));
                        self.meter.disk_ios += 1;
                        join(&mut grant, g);
                    }
                }
                grant.expect("nonzero write produced no spans")
            }
        };
        self.meter.record(&req, now, &grant);
        grant
    }

    fn flush(&mut self, now: Time) -> Time {
        self.pump(now);
        self.settle_open_row_unless(now, None);
        self.disks
            .iter()
            .map(|d| d.free_at())
            .max()
            .unwrap_or(Time::ZERO)
    }

    fn capacity(&self) -> u64 {
        let min = self
            .disks
            .iter()
            .map(|d| d.params().capacity)
            .min()
            .unwrap_or(0);
        min * (self.n() - 1)
    }

    fn kind(&self) -> &'static str {
        "RAID 5"
    }

    fn meter(&self) -> &VolumeMeter {
        &self.meter
    }

    fn try_bulk_run(&mut self, now: Time, req: BlockReq, chunk: u64) -> Option<IoGrant> {
        let rw = self.row_width();
        let full = req.len / chunk;
        // A row-multiple chunk lands `chunk / rw` full rows — `stripe`
        // bytes per row — on every member, parity included.
        let piece = (chunk / rw) * self.stripe;
        let ok = fast_path::bulk_enabled()
            && self.bulk_enabled
            && req.op.is_write()
            && full >= 2
            && chunk.is_multiple_of(rw)
            && req.offset.is_multiple_of(rw)
            && self.open_row.is_none()
            && self.failed.is_none()
            && !self.rebuild.is_some_and(|rb| rb.running())
            && self.disks.iter().all(|d| d.slow_factor() == 1.0)
            && horizon_allows(
                self.fault_horizon,
                self.disks
                    .iter()
                    .map(|d| member_bound(d, now, req.op, piece, full))
                    .max()
                    .unwrap_or(now),
            );
        if !ok {
            self.bulk_misses += 1;
            return None;
        }
        self.bulk_hits += 1;
        // pump() and settle_open_row_unless() are no-ops here (no running
        // rebuild, no open row, by eligibility).
        self.high_water = self.high_water.max(req.offset + full * chunk);
        let base = (req.offset / rw) * self.stripe;
        let runs = run_members(
            self.disks.iter_mut().map(|d| (d, base, piece)),
            now,
            req.op,
            full,
        );
        let mut grant = record_chunks(&mut self.meter, &runs, now, req.op, req.offset, chunk, full);
        let tail = req.len % chunk;
        if tail > 0 {
            grant = grant.join(self.submit(
                now,
                BlockReq {
                    op: req.op,
                    offset: req.offset + full * chunk,
                    len: tail,
                },
            ));
        }
        Some(grant)
    }

    fn set_fault_horizon(&mut self, horizon: Option<Time>) {
        self.fault_horizon = horizon;
    }

    fn set_bulk_enabled(&mut self, on: bool) {
        self.bulk_enabled = on;
    }

    fn bulk_run_stats(&self) -> (u64, u64) {
        (self.bulk_hits, self.bulk_misses)
    }

    /// Marks a member disk as failed. The array keeps serving requests in
    /// *degraded mode*: chunks of the failed member are reconstructed by
    /// reading every surviving member of the row — the availability price
    /// the paper's configuration analysis weighs against JBOD.
    fn fail_disk(&mut self, disk: usize) -> Result<(), VolumeError> {
        if disk >= self.disks.len() {
            return Err(VolumeError::UnknownMember {
                disk,
                members: self.disks.len(),
            });
        }
        if let Some(failed) = self.failed {
            // RAID 5 survives exactly one failure.
            return Err(VolumeError::AlreadyDegraded { failed });
        }
        self.failed = Some(disk);
        Ok(())
    }

    fn replace_disk(&mut self, now: Time, disk: usize) -> Result<(), VolumeError> {
        if disk >= self.disks.len() {
            return Err(VolumeError::UnknownMember {
                disk,
                members: self.disks.len(),
            });
        }
        if self.rebuild.is_some_and(|rb| rb.running()) {
            return Err(VolumeError::RebuildInProgress);
        }
        if self.failed != Some(disk) {
            return Err(VolumeError::NotFailed { disk });
        }
        self.disks[disk].swap_fresh();
        let total = self.member_extent();
        let mut rb = Rebuilder::new(disk, total, now);
        if total == 0 {
            rb.report.finished = Some(now);
            self.failed = None;
        }
        self.rebuild = Some(rb);
        Ok(())
    }

    fn set_disk_slowdown(&mut self, disk: usize, factor: f64) -> Result<(), VolumeError> {
        match self.disks.get_mut(disk) {
            Some(d) => {
                d.set_slow_factor(factor);
                Ok(())
            }
            None => Err(VolumeError::UnknownMember {
                disk,
                members: self.disks.len(),
            }),
        }
    }

    /// Issues every rebuild batch whose instant falls at or before `now`:
    /// read the batch extent from all `n-1` survivors, write the
    /// reconstruction to the replacement, schedule the next batch at its
    /// completion. The member stays logically failed (writes skip it,
    /// reads reconstruct) until the resilver covers the whole extent.
    fn pump(&mut self, now: Time) {
        let Some(mut rb) = self.rebuild else { return };
        if !rb.running() {
            return;
        }
        while rb.next_off < rb.report.bytes_total && rb.next_issue <= now {
            let take = REBUILD_BATCH.min(rb.report.bytes_total - rb.next_off);
            let issue = rb.next_issue;
            let mut ready = issue;
            for d in 0..self.disks.len() {
                if d == rb.target {
                    continue;
                }
                let g = self.disks[d].submit(issue, BlockReq::read(rb.next_off, take));
                self.meter.disk_ios += 1;
                ready = ready.max(g.ack);
            }
            let w = self.disks[rb.target].submit(ready, BlockReq::write(rb.next_off, take));
            self.meter.disk_ios += 1;
            rb.next_off += take;
            rb.report.bytes_done += take;
            rb.next_issue = w.ack;
        }
        if rb.next_off >= rb.report.bytes_total {
            rb.report.finished = Some(rb.next_issue);
            self.failed = None;
        }
        self.rebuild = Some(rb);
    }

    fn rebuild_report(&self) -> Option<RebuildReport> {
        self.rebuild.map(|rb| rb.report)
    }

    fn finish_rebuild(&mut self, now: Time) -> Time {
        self.pump(Time::MAX);
        match self.rebuild {
            Some(rb) => rb.report.finished.map_or(now, |f| f.max(now)),
            None => now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use simcore::{Bandwidth, SplitMix64, KIB, MIB};

    fn disk(seed: u64) -> Disk {
        Disk::new(DiskParams::sata_7200(150, 72), seed)
    }

    fn disks(n: usize) -> Vec<Disk> {
        (0..n).map(|i| disk(i as u64 + 1)).collect()
    }

    const STRIPE: u64 = 256 * KIB;

    #[test]
    fn raid5_locate_left_symmetric_layout() {
        // 5 disks, row 0: parity on disk 4, data on 0..3.
        let c = raid5_locate(0, STRIPE, 5);
        assert_eq!(c.row, 0);
        assert_eq!(c.parity_disk, 4);
        assert_eq!(c.disk, 0);
        assert_eq!(c.disk_offset, 0);
        // Second chunk of row 0 → disk 1.
        let c = raid5_locate(STRIPE, STRIPE, 5);
        assert_eq!(c.disk, 1);
        // Row 1: parity rotates to disk 3; first data chunk on disk 4.
        let c = raid5_locate(4 * STRIPE, STRIPE, 5);
        assert_eq!(c.row, 1);
        assert_eq!(c.parity_disk, 3);
        assert_eq!(c.disk, 4);
        assert_eq!(c.disk_offset, STRIPE);
    }

    #[test]
    fn raid5_locate_never_maps_data_to_parity_disk() {
        for off in (0..100 * MIB).step_by((STRIPE / 2) as usize) {
            let c = raid5_locate(off, STRIPE, 5);
            assert_ne!(c.disk, c.parity_disk, "offset {off}");
        }
    }

    #[test]
    fn raid0_spans_cover_request_exactly() {
        let r = Raid0::new(disks(4), STRIPE);
        let req = BlockReq::read(STRIPE / 2, 5 * STRIPE);
        let spans = r.spans(&req);
        let total: u64 = spans.iter().map(|(_, _, l)| l).sum();
        assert_eq!(total, req.len);
        // 5.5 stripes starting mid-chunk touch at most all 4 disks.
        assert!(spans.len() <= 4);
    }

    #[test]
    fn raid0_sequential_read_scales_with_members() {
        let mut single = Jbod::new(disk(9));
        let mut striped = Raid0::new(disks(4), STRIPE);
        let measure = |v: &mut dyn Volume| {
            let mut now = v.submit(Time::ZERO, BlockReq::read(0, 4 * MIB)).ack;
            let start = now;
            for i in 1..64u64 {
                now = v.submit(now, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            Bandwidth::measured(63 * 4 * MIB, now - start).as_mib_per_sec()
        };
        let s = measure(&mut single);
        let m = measure(&mut striped);
        assert!(m > s * 2.5, "raid0 {m} vs single {s}");
    }

    #[test]
    fn raid1_write_hits_both_members_read_hits_one() {
        let mut r = Raid1::new(disk(1), disk(2));
        r.submit(Time::ZERO, BlockReq::write(0, MIB));
        assert_eq!(r.meter().disk_ios, 2);
        r.submit(Time::from_secs(1), BlockReq::read(0, MIB));
        assert_eq!(r.meter().disk_ios, 3);
    }

    #[test]
    fn raid1_concurrent_readers_use_both_members() {
        let mut r = Raid1::new(disk(1), disk(2));
        // Two interleaved sequential streams issued at the same instants.
        let mut now = Time::ZERO;
        let warm_a = r.submit(now, BlockReq::read(0, MIB));
        let warm_b = r.submit(now, BlockReq::read(1000 * MIB, MIB));
        now = warm_a.ack.max(warm_b.ack);
        let start = now;
        let mut done = now;
        for i in 1..33u64 {
            let a = r.submit(now, BlockReq::read(i * MIB, MIB));
            let b = r.submit(now, BlockReq::read((1000 + i) * MIB, MIB));
            now = a.ack.max(b.ack);
            done = now;
        }
        let rate = Bandwidth::measured(2 * 32 * MIB, done - start).as_mib_per_sec();
        // Two streams on two members ≈ 2× media rate; require > 1.5×.
        assert!(rate > 1.5 * 72.0, "aggregate mirror read rate {rate}");
    }

    #[test]
    fn raid1_single_stream_keeps_sequential_affinity() {
        let mut r = Raid1::new(disk(1), disk(2));
        let mut now = r.submit(Time::ZERO, BlockReq::read(0, MIB)).ack;
        let start = now;
        for i in 1..65u64 {
            now = r.submit(now, BlockReq::read(i * MIB, MIB)).ack;
        }
        let rate = Bandwidth::measured(64 * MIB, now - start).as_mib_per_sec();
        assert!(rate > 0.85 * 72.0, "single-stream mirror read rate {rate}");
    }

    #[test]
    fn raid5_full_stripe_write_uses_all_members_once() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        let row = 4 * STRIPE; // full row width for 5 disks
        r.submit(Time::ZERO, BlockReq::write(0, row));
        assert_eq!(r.meter().disk_ios, 5);
        assert_eq!(r.rmw_count(), 0);
    }

    #[test]
    fn raid5_sequential_write_outpaces_single_disk() {
        let mut r5 = Raid5::new(disks(5), STRIPE, true);
        let mut jbod = Jbod::new(disk(7));
        let measure = |v: &mut dyn Volume| {
            let mut now = v.submit(Time::ZERO, BlockReq::write(0, 4 * MIB)).ack;
            let start = now;
            for i in 1..64u64 {
                now = v.submit(now, BlockReq::write(i * 4 * MIB, 4 * MIB)).ack;
            }
            Bandwidth::measured(63 * 4 * MIB, now - start).as_mib_per_sec()
        };
        let r5_rate = measure(&mut r5);
        let jbod_rate = measure(&mut jbod);
        assert!(
            r5_rate > jbod_rate * 2.0,
            "raid5 seq write {r5_rate} vs jbod {jbod_rate}"
        );
    }

    #[test]
    fn raid5_random_small_writes_pay_rmw() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        let mut rng = SplitMix64::new(11);
        let mut now = Time::ZERO;
        for _ in 0..50 {
            let row = rng.next_below(10_000);
            let off = row * 4 * STRIPE + 4096;
            now = r.submit(now, BlockReq::write(off, 4096)).ack;
        }
        // Every write lands on a different row, abandoning the previous
        // partial row → RMW settlements accumulate (the last row stays open).
        assert!(r.rmw_count() >= 48, "rmw_count = {}", r.rmw_count());
    }

    #[test]
    fn raid5_sequential_small_writes_coalesce_parity() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        let mut now = Time::ZERO;
        let mut off = 0;
        // 64 KiB sequential writes over 8 full rows.
        while off < 8 * 4 * STRIPE {
            now = r.submit(now, BlockReq::write(off, 64 * KIB)).ack;
            off += 64 * KIB;
        }
        assert_eq!(r.rmw_count(), 0, "sequential stream must not RMW");
    }

    #[test]
    fn raid5_no_coalesce_pays_rmw_per_partial_write() {
        let mut r = Raid5::new(disks(5), STRIPE, false);
        let mut now = Time::ZERO;
        for i in 0..10u64 {
            now = r.submit(now, BlockReq::write(i * 64 * KIB, 64 * KIB)).ack;
        }
        assert_eq!(r.rmw_count(), 10);
    }

    #[test]
    fn raid5_flush_settles_open_row() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        r.submit(Time::ZERO, BlockReq::write(0, 64 * KIB));
        assert_eq!(r.rmw_count(), 0);
        r.flush(Time::from_secs(1));
        assert_eq!(r.rmw_count(), 1);
    }

    #[test]
    fn raid5_read_faster_than_single_disk() {
        let mut r5 = Raid5::new(disks(5), STRIPE, true);
        let mut jbod = Jbod::new(disk(3));
        let measure = |v: &mut dyn Volume| {
            let mut now = v.submit(Time::ZERO, BlockReq::read(0, 4 * MIB)).ack;
            let start = now;
            for i in 1..64u64 {
                now = v.submit(now, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            Bandwidth::measured(63 * 4 * MIB, now - start).as_mib_per_sec()
        };
        let a = measure(&mut r5);
        let b = measure(&mut jbod);
        assert!(a > b * 2.0, "raid5 read {a} vs jbod {b}");
    }

    #[test]
    fn capacities() {
        assert_eq!(Jbod::new(disk(1)).capacity(), 150 * 1024 * 1024 * 1024);
        assert_eq!(
            Raid1::new(disk(1), disk(2)).capacity(),
            150 * 1024 * 1024 * 1024
        );
        assert_eq!(
            Raid5::new(disks(5), STRIPE, true).capacity(),
            4 * 150 * 1024 * 1024 * 1024
        );
        assert_eq!(
            Raid0::new(disks(4), STRIPE).capacity(),
            4 * 150 * 1024 * 1024 * 1024
        );
        assert_eq!(Raid5::new(disks(5), STRIPE, true).kind(), "RAID 5");
    }

    #[test]
    fn raid5_write_then_read_roundtrip_grants_are_ordered() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        let w = r.submit(Time::ZERO, BlockReq::write(0, 8 * MIB));
        let rd = r.submit(w.ack, BlockReq::read(0, 8 * MIB));
        assert!(rd.start >= w.ack || rd.start >= w.start);
        assert!(rd.ack > w.ack);
    }

    #[test]
    fn raid5_degraded_reads_cost_reconstruction() {
        let measure = |fail: bool| {
            let mut r = Raid5::new(disks(5), STRIPE, true);
            if fail {
                r.fail_disk(2).unwrap();
            }
            let mut now = r.submit(Time::ZERO, BlockReq::read(0, 4 * MIB)).ack;
            let start = now;
            for i in 1..32u64 {
                now = r.submit(now, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            Bandwidth::measured(31 * 4 * MIB, now - start).as_mib_per_sec()
        };
        let healthy = measure(false);
        let degraded = measure(true);
        assert!(
            degraded < healthy * 0.75,
            "degraded {degraded} vs healthy {healthy}: reconstruction must cost"
        );
        assert!(degraded > 20.0, "degraded array still serves reads");
    }

    #[test]
    fn raid5_degraded_writes_complete() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        r.fail_disk(0).unwrap();
        assert_eq!(r.failed_disk(), Some(0));
        let g = r.submit(Time::ZERO, BlockReq::write(0, 8 * MIB));
        assert!(g.ack > Time::ZERO);
        // Small writes + flush still settle without touching the dead disk.
        let g2 = r.submit(g.ack, BlockReq::write(100 * MIB, 64 * KIB));
        r.flush(g2.ack);
    }

    #[test]
    fn raid5_second_failure_rejected() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        r.fail_disk(0).unwrap();
        assert_eq!(
            r.fail_disk(1),
            Err(VolumeError::AlreadyDegraded { failed: 0 })
        );
        assert_eq!(
            r.fail_disk(9),
            Err(VolumeError::UnknownMember {
                disk: 9,
                members: 5
            })
        );
    }

    #[test]
    fn constructors_reject_bad_geometry() {
        assert_eq!(
            Raid5::try_new(disks(2), STRIPE, true).err(),
            Some(VolumeError::TooFewMembers {
                kind: "RAID 5",
                need: 3,
                got: 2
            })
        );
        assert_eq!(
            Raid5::try_new(disks(5), 0, true).err(),
            Some(VolumeError::ZeroStripe)
        );
        assert_eq!(
            Raid0::try_new(disks(1), STRIPE).err(),
            Some(VolumeError::TooFewMembers {
                kind: "RAID 0",
                need: 2,
                got: 1
            })
        );
        assert_eq!(
            try_raid5_locate(0, STRIPE, 2).err(),
            Some(VolumeError::TooFewMembers {
                kind: "RAID 5",
                need: 3,
                got: 2
            })
        );
        assert_eq!(
            try_raid5_locate(0, 0, 5).err(),
            Some(VolumeError::ZeroStripe)
        );
        assert!(try_raid5_locate(0, STRIPE, 5).is_ok());
    }

    #[test]
    fn jbod_rejects_failure_but_accepts_slowdown() {
        let mut j = Jbod::new(disk(1));
        assert_eq!(j.fail_disk(0), Err(VolumeError::Unsupported("JBOD")));
        assert!(j.set_disk_slowdown(0, 3.0).is_ok());
        assert_eq!(
            j.set_disk_slowdown(1, 3.0),
            Err(VolumeError::UnknownMember {
                disk: 1,
                members: 1
            })
        );
    }

    #[test]
    fn slow_member_drags_the_array() {
        let measure = |slow: bool| {
            let mut r = Raid5::new(disks(5), STRIPE, true);
            if slow {
                r.set_disk_slowdown(2, 4.0).unwrap();
            }
            let mut now = r.submit(Time::ZERO, BlockReq::read(0, 4 * MIB)).ack;
            let start = now;
            for i in 1..32u64 {
                now = r.submit(now, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            Bandwidth::measured(31 * 4 * MIB, now - start).as_mib_per_sec()
        };
        let nominal = measure(false);
        let limping = measure(true);
        assert!(
            limping < nominal * 0.5,
            "limping member: {limping} vs nominal {nominal}"
        );
    }

    #[test]
    fn raid1_degraded_reads_route_to_survivor() {
        let mut r = Raid1::new(disk(1), disk(2));
        r.fail_disk(0).unwrap();
        assert_eq!(r.failed_disk(), Some(0));
        let before = r.member_ios();
        let mut now = Time::ZERO;
        for i in 0..8u64 {
            now = r.submit(now, BlockReq::read(i * MIB, MIB)).ack;
        }
        let after = r.member_ios();
        assert_eq!(after[0], before[0], "dead member must not serve reads");
        assert_eq!(after[1], before[1] + 8);
    }

    #[test]
    fn raid1_degraded_writes_hit_survivor_only() {
        let mut r = Raid1::new(disk(1), disk(2));
        r.fail_disk(1).unwrap();
        let g = r.submit(Time::ZERO, BlockReq::write(0, MIB));
        assert!(g.ack > Time::ZERO);
        assert_eq!(r.member_ios(), [1, 0]);
        assert_eq!(
            r.fail_disk(0),
            Err(VolumeError::AlreadyDegraded { failed: 1 })
        );
    }

    #[test]
    fn raid1_rebuild_restores_the_mirror() {
        let mut r = Raid1::new(disk(1), disk(2));
        let mut now = Time::ZERO;
        for i in 0..16u64 {
            now = r.submit(now, BlockReq::write(i * 4 * MIB, 4 * MIB)).ack;
        }
        r.fail_disk(0).unwrap();
        assert_eq!(
            r.replace_disk(now, 1),
            Err(VolumeError::NotFailed { disk: 1 })
        );
        r.replace_disk(now, 0).unwrap();
        let done = r.finish_rebuild(now);
        assert!(done > now, "rebuild must take simulated time");
        let report = r.rebuild_report().unwrap();
        assert_eq!(report.bytes_done, 64 * MIB);
        assert_eq!(report.finished, Some(done));
        assert_eq!(r.failed_disk(), None, "array healthy after rebuild");
    }

    #[test]
    fn raid5_rebuild_completes_and_competes_with_foreground() {
        let mut r = Raid5::new(disks(5), STRIPE, true);
        let mut now = Time::ZERO;
        for i in 0..64u64 {
            now = r.submit(now, BlockReq::write(i * 4 * MIB, 4 * MIB)).ack;
        }
        let healthy_rate = {
            let start = now;
            let mut t = now;
            for i in 0..16u64 {
                t = r.submit(t, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            now = t;
            Bandwidth::measured(16 * 4 * MIB, t - start).as_mib_per_sec()
        };
        r.fail_disk(3).unwrap();
        r.replace_disk(now, 3).unwrap();
        // Foreground reads during the rebuild window are slower than healthy:
        // they are reconstructed AND queue behind resilver batches.
        let window_rate = {
            let start = now;
            let mut t = now;
            for i in 0..16u64 {
                t = r.submit(t, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            now = t;
            Bandwidth::measured(16 * 4 * MIB, t - start).as_mib_per_sec()
        };
        assert!(
            window_rate < healthy_rate * 0.8,
            "rebuild window {window_rate} vs healthy {healthy_rate}"
        );
        let done = r.finish_rebuild(now);
        assert!(done > now);
        let report = r.rebuild_report().unwrap();
        assert_eq!(report.finished, Some(done));
        assert!(
            report.bytes_total >= 64 * MIB / 4,
            "extent covers written rows"
        );
        assert_eq!(report.bytes_done, report.bytes_total);
        assert_eq!(r.failed_disk(), None, "array healthy after rebuild");
        // Reads after the rebuild are full-speed again (no reconstruction).
        let after_rate = {
            let start = done;
            let mut t = done;
            for i in 0..16u64 {
                t = r.submit(t, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            Bandwidth::measured(16 * 4 * MIB, t - start).as_mib_per_sec()
        };
        assert!(
            after_rate > window_rate,
            "post-rebuild {after_rate} vs window {window_rate}"
        );
    }

    #[test]
    fn raid0_spans_match_chunk_walk_reference() {
        // The closed form must agree with a chunk-by-chunk reference walk
        // for a grid of alignments and lengths.
        let r = Raid0::new(disks(4), STRIPE);
        let reference = |req: &BlockReq| -> Vec<(usize, u64, u64)> {
            let n = 4u64;
            let mut per_disk: Vec<Option<(u64, u64)>> = vec![None; 4];
            let mut pos = req.offset;
            while pos < req.end() {
                let chunk = pos / STRIPE;
                let disk = (chunk % n) as usize;
                let disk_off = (chunk / n) * STRIPE + pos % STRIPE;
                let take = (STRIPE - pos % STRIPE).min(req.end() - pos);
                match &mut per_disk[disk] {
                    Some((_, len)) => *len += take,
                    None => per_disk[disk] = Some((disk_off, take)),
                }
                pos += take;
            }
            per_disk
                .into_iter()
                .enumerate()
                .filter_map(|(d, s)| s.map(|(o, l)| (d, o, l)))
                .collect()
        };
        for off in [0, 1, STRIPE / 2, STRIPE, 3 * STRIPE + 17, 9 * STRIPE] {
            for len in [1, STRIPE - 1, STRIPE, 2 * STRIPE + 3, 13 * STRIPE, 64 * MIB] {
                let req = BlockReq::read(off, len);
                assert_eq!(
                    r.spans(&req).to_vec(),
                    reference(&req),
                    "off={off} len={len}"
                );
            }
        }
    }

    #[test]
    fn raid5_read_shares_match_chunk_walk_reference() {
        for n in [3usize, 5, 8] {
            let r = Raid5::new(disks(n), STRIPE, true);
            let rw = (n as u64 - 1) * STRIPE;
            for off in [0, STRIPE / 2, rw - 1, rw, 3 * rw + STRIPE, 7 * rw] {
                for len in [1, STRIPE, rw, rw + 1, 5 * rw - STRIPE / 2, 48 * MIB] {
                    let req = BlockReq::read(off, len);
                    let mut reference = vec![0u64; n];
                    let mut pos = req.offset;
                    while pos < req.end() {
                        let loc = raid5_locate(pos, STRIPE, n);
                        let take = (STRIPE - (pos % STRIPE)).min(req.end() - pos);
                        reference[loc.disk] += take;
                        pos += take;
                    }
                    assert_eq!(
                        r.read_shares(&req).to_vec(),
                        reference,
                        "n={n} off={off} len={len}"
                    );
                }
            }
        }
    }

    /// Serializes tests that read or flip the process-wide fast-path
    /// switch, so the hit-counter assertions cannot race the switch test.
    static FAST_PATH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fast_path_guard() -> std::sync::MutexGuard<'static, ()> {
        FAST_PATH_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Runs the same chunked workload through a bulk-enabled and a
    /// bulk-disabled twin and asserts every observable is identical.
    fn assert_bulk_equivalence<V: Volume>(mut bulk: V, mut granular: V, reqs: &[(BlockReq, u64)]) {
        let _guard = fast_path_guard();
        bulk.set_bulk_enabled(true);
        granular.set_bulk_enabled(false);
        let mut now = Time::ZERO;
        for &(req, chunk) in reqs {
            let a = bulk.submit_run(now, req, chunk);
            let b = granular.submit_run(now, req, chunk);
            assert_eq!(a, b, "grant mismatch for {req:?} chunk {chunk}");
            now = a.ack;
        }
        assert_eq!(bulk.flush(now), granular.flush(now));
        assert_eq!(bulk.meter().disk_ios, granular.meter().disk_ios);
        // Welford latency accumulators are order-sensitive f64 state: the
        // Debug render only matches if the fast path recorded exactly the
        // grants the granular loop did, in the same order.
        assert_eq!(
            format!("{:?}", bulk.meter()),
            format!("{:?}", granular.meter())
        );
        let (hits, _) = bulk.bulk_run_stats();
        assert!(hits > 0, "fast path never engaged");
        let (g_hits, _) = granular.bulk_run_stats();
        assert_eq!(g_hits, 0, "disabled twin must stay granular");
    }

    #[test]
    fn jbod_bulk_run_matches_granular_loop() {
        let reqs = [
            (BlockReq::write(0, 64 * MIB), MIB),
            (BlockReq::read(16 * MIB, 32 * MIB + 123), 4 * MIB),
            (BlockReq::write(200 * MIB, 8 * MIB + 4 * KIB), MIB),
        ];
        assert_bulk_equivalence(Jbod::new(disk(5)), Jbod::new(disk(5)), &reqs);
    }

    #[test]
    fn raid0_bulk_run_matches_granular_loop() {
        let width = 4 * STRIPE;
        let reqs = [
            (BlockReq::write(0, 64 * MIB), width),
            (
                BlockReq::read(8 * width, 32 * width + STRIPE / 2),
                2 * width,
            ),
        ];
        assert_bulk_equivalence(
            Raid0::new(disks(4), STRIPE),
            Raid0::new(disks(4), STRIPE),
            &reqs,
        );
    }

    #[test]
    fn raid1_bulk_run_matches_granular_loop() {
        let reqs = [
            (BlockReq::write(0, 48 * MIB), MIB),
            (BlockReq::write(100 * MIB, 16 * MIB + 777), 2 * MIB),
        ];
        assert_bulk_equivalence(
            Raid1::new(disk(1), disk(2)),
            Raid1::new(disk(1), disk(2)),
            &reqs,
        );
    }

    #[test]
    fn raid5_bulk_run_matches_granular_loop() {
        let rw = 4 * STRIPE;
        let reqs = [
            (BlockReq::write(0, 64 * MIB), rw),
            (BlockReq::write(16 * rw, 32 * rw + STRIPE), 4 * rw),
        ];
        assert_bulk_equivalence(
            Raid5::new(disks(5), STRIPE, true),
            Raid5::new(disks(5), STRIPE, true),
            &reqs,
        );
    }

    #[test]
    fn bulk_run_declines_misaligned_degraded_and_small_runs() {
        let rw = 4 * STRIPE;
        let mut r = Raid5::new(disks(5), STRIPE, true);
        // Misaligned offset.
        r.submit_run(Time::ZERO, BlockReq::write(STRIPE, 8 * rw), rw);
        // Single full chunk.
        let t = r.flush(Time::ZERO);
        r.submit_run(t, BlockReq::write(0, rw + 1), rw);
        assert_eq!(r.bulk_run_stats().0, 0, "ineligible runs must miss");
        assert!(r.bulk_run_stats().1 >= 2);
        // Degraded array declines even aligned runs.
        let t = r.flush(t);
        r.fail_disk(2).unwrap();
        r.submit_run(t, BlockReq::write(0, 8 * rw), rw);
        assert_eq!(r.bulk_run_stats().0, 0);
    }

    #[test]
    fn bulk_run_respects_the_fault_horizon() {
        let _guard = fast_path_guard();
        let rw = 4 * STRIPE;
        let mut near = Raid5::new(disks(5), STRIPE, true);
        let mut far = Raid5::new(disks(5), STRIPE, true);
        near.set_fault_horizon(Some(Time::from_millis(1)));
        far.set_fault_horizon(Some(Time::from_secs(3600)));
        let req = BlockReq::write(0, 32 * rw);
        let a = near.submit_run(Time::ZERO, req, rw);
        let b = far.submit_run(Time::ZERO, req, rw);
        // A fault window inside the transfer forces the granular path…
        assert_eq!(near.bulk_run_stats(), (0, 1));
        // …a distant horizon permits the closed form…
        assert_eq!(far.bulk_run_stats(), (1, 0));
        // …and both paths produce the same timings regardless.
        assert_eq!(a, b);
    }

    #[test]
    fn global_fast_path_switch_gates_the_closed_form() {
        let _guard = fast_path_guard();
        let mut r = Jbod::new(disk(3));
        fast_path::set_bulk_enabled(false);
        r.submit_run(Time::ZERO, BlockReq::write(0, 16 * MIB), MIB);
        fast_path::set_bulk_enabled(true);
        let t = r.flush(Time::ZERO);
        r.submit_run(t, BlockReq::write(16 * MIB, 16 * MIB), MIB);
        let (hits, misses) = r.bulk_run_stats();
        assert_eq!(hits, 1, "re-enabled switch must restore the fast path");
        assert!(misses >= 1, "disabled switch must force the granular path");
    }

    #[test]
    fn raid1_pick_reader_keeps_affinity_via_rolling_hint() {
        let mut r = Raid1::new(disk(1), disk(2));
        // Stream A starts on member 0 (free_at tie prefers 0).
        let a0 = r.submit(Time::ZERO, BlockReq::read(0, MIB));
        // Stream B arrives while member 0 is busy → member 1.
        r.submit(Time::ZERO, BlockReq::read(500 * MIB, MIB));
        assert_eq!(r.member_ios(), [1, 1]);
        // A continues sequentially: the rolling hint was overwritten by B,
        // so the scan fallback must still pin A to member 0…
        let a1 = r.submit(a0.ack, BlockReq::read(MIB, MIB));
        assert_eq!(r.member_ios(), [2, 1]);
        // …and now the hint itself answers the next sequential read.
        assert_eq!(r.pick_reader(2 * MIB), 0);
        r.submit(a1.ack, BlockReq::read(2 * MIB, MIB));
        assert_eq!(r.member_ios(), [3, 1]);
    }

    #[test]
    fn raid1_hint_tie_prefers_member_zero_like_the_scan() {
        let mut r = Raid1::new(disk(1), disk(2));
        // Both members end a read at the same offset: member 0 first…
        let g = r.submit(Time::ZERO, BlockReq::read(0, MIB));
        // …then member 1 (member 0 is busy at arrival time zero).
        r.submit(Time::ZERO, BlockReq::read(0, MIB));
        assert_eq!(r.member_ios(), [1, 1]);
        // The scan would pick member 0; the hint must agree.
        assert_eq!(r.pick_reader(MIB), 0);
        r.submit(g.ack, BlockReq::read(MIB, MIB));
        assert_eq!(r.member_ios(), [2, 1]);
    }

    #[test]
    fn rebuild_is_deterministic() {
        let run = || {
            let mut r = Raid5::new(disks(5), STRIPE, true);
            let mut now = Time::ZERO;
            for i in 0..32u64 {
                now = r.submit(now, BlockReq::write(i * 4 * MIB, 4 * MIB)).ack;
            }
            r.fail_disk(1).unwrap();
            r.replace_disk(now, 1).unwrap();
            for i in 0..8u64 {
                now = r.submit(now, BlockReq::read(i * 4 * MIB, 4 * MIB)).ack;
            }
            r.finish_rebuild(now)
        };
        assert_eq!(run(), run());
    }
}
