//! Controller write-back cache.
//!
//! The paper's RAID arrays run "with write-cache enabled (write back)": the
//! controller acknowledges writes once they land in its battery-backed RAM
//! and destages them to the member disks in the background. [`CachedVolume`]
//! models exactly that:
//!
//! * A write is destaged to the backing volume immediately (keeping the
//!   backing timeline accurate) but **acknowledged** at controller speed as
//!   long as the cache has room for it.
//! * Cache occupancy is the set of writes whose destage has not yet
//!   completed; when the cache is full, acknowledgment degrades to the
//!   destage completion time — sustained throughput converges to the backing
//!   volume's rate while bursts up to the cache size run at controller speed.
//! * Reads pass through (read caching belongs to the filesystem page cache).

use crate::req::{BlockOp, BlockReq, IoGrant};
use crate::volume::{RebuildReport, Volume, VolumeError, VolumeMeter};
use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, FifoResource, Time};
use std::collections::VecDeque;

/// Parameters of a controller write-back cache.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WriteCacheParams {
    /// Cache capacity in bytes.
    pub size: u64,
    /// Rate at which the controller absorbs data into cache RAM.
    pub absorb_bw: Bandwidth,
    /// Fixed per-request controller latency.
    pub latency: Time,
}

impl WriteCacheParams {
    /// A typical battery-backed controller cache of `mib` MiB.
    pub fn controller(mib: u64) -> WriteCacheParams {
        WriteCacheParams {
            size: mib * 1024 * 1024,
            absorb_bw: Bandwidth::from_mib_per_sec(800),
            latency: Time::from_micros(25),
        }
    }
}

/// A write-back cache in front of a backing volume.
pub struct CachedVolume<V> {
    params: WriteCacheParams,
    inner: V,
    /// Front-end acknowledgment pipeline (the controller itself is serial).
    front: FifoResource,
    /// Writes whose destage is still in flight: (destage completion, bytes).
    in_flight: VecDeque<(Time, u64)>,
    occupied: u64,
    meter: VolumeMeter,
}

impl<V: Volume> CachedVolume<V> {
    /// Wraps `inner` with a write-back cache.
    pub fn new(params: WriteCacheParams, inner: V) -> Self {
        CachedVolume {
            params,
            inner,
            front: FifoResource::new(),
            in_flight: VecDeque::new(),
            occupied: 0,
            meter: VolumeMeter::default(),
        }
    }

    /// Access to the backing volume (e.g. for its meter).
    pub fn inner(&self) -> &V {
        &self.inner
    }

    /// Bytes currently dirty in cache as of the last submission.
    pub fn occupied(&self) -> u64 {
        self.occupied
    }

    /// Releases cache space for destages that completed by `now`.
    fn expire(&mut self, now: Time) {
        while let Some(&(done, bytes)) = self.in_flight.front() {
            if done <= now {
                self.occupied -= bytes;
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }

    /// The instant at which `need` bytes of cache space become available,
    /// assuming destages complete in FIFO order. Returns `now` if space is
    /// already available.
    fn space_available_at(&self, now: Time, need: u64) -> Time {
        if self.occupied + need <= self.params.size {
            return now;
        }
        let mut freed = 0u64;
        for &(done, bytes) in &self.in_flight {
            freed += bytes;
            if self.occupied - freed + need <= self.params.size {
                return done.max(now);
            }
        }
        // Even draining everything is not enough (request bigger than the
        // cache): ack tracks the destage itself.
        Time::MAX
    }
}

impl<V: Volume> Volume for CachedVolume<V> {
    fn submit(&mut self, now: Time, req: BlockReq) -> IoGrant {
        match req.op {
            BlockOp::Read => {
                // Reads must observe pending writes; the backing volume's
                // FIFO timelines already order them correctly.
                let g = self.inner.submit(now, req);
                self.meter.record(&req, now, &g);
                g
            }
            BlockOp::Write => {
                self.expire(now);
                // Destage keeps the backing timeline accurate regardless of
                // when the host sees the ack.
                let destage = self.inner.submit(now, req);
                let admitted_at = self.space_available_at(now, req.len);

                let ack = if admitted_at == Time::MAX {
                    // Larger than the whole cache: effectively write-through.
                    destage.durable
                } else {
                    let service = self.params.latency + self.params.absorb_bw.time_for(req.len);
                    self.front.submit(admitted_at, service).end
                };

                self.in_flight.push_back((destage.durable, req.len));
                self.occupied += req.len;

                let g = IoGrant {
                    start: destage.start.min(ack),
                    ack: ack.min(destage.durable),
                    durable: destage.durable,
                };
                self.meter.record(&req, now, &g);
                g
            }
        }
    }

    fn flush(&mut self, now: Time) -> Time {
        let t = self.inner.flush(now);
        self.expire(t);
        t
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn meter(&self) -> &VolumeMeter {
        &self.meter
    }

    // The write cache acknowledges every chunk individually, so chunked
    // runs keep the default granular `submit_run` (each chunk interacts
    // with the cache) — `try_bulk_run` is deliberately NOT overridden.
    // The bulk diagnostics and the fault horizon forward to the backing
    // volume, which only ever sees per-chunk submissions from the cache.
    fn set_fault_horizon(&mut self, horizon: Option<Time>) {
        self.inner.set_fault_horizon(horizon);
    }

    fn set_bulk_enabled(&mut self, on: bool) {
        self.inner.set_bulk_enabled(on);
    }

    fn bulk_run_stats(&self) -> (u64, u64) {
        self.inner.bulk_run_stats()
    }

    // Fault hooks pass straight through to the backing volume.
    fn fail_disk(&mut self, disk: usize) -> Result<(), VolumeError> {
        self.inner.fail_disk(disk)
    }

    fn replace_disk(&mut self, now: Time, disk: usize) -> Result<(), VolumeError> {
        self.inner.replace_disk(now, disk)
    }

    fn set_disk_slowdown(&mut self, disk: usize, factor: f64) -> Result<(), VolumeError> {
        self.inner.set_disk_slowdown(disk, factor)
    }

    fn pump(&mut self, now: Time) {
        self.inner.pump(now);
    }

    fn rebuild_report(&self) -> Option<RebuildReport> {
        self.inner.rebuild_report()
    }

    fn finish_rebuild(&mut self, now: Time) -> Time {
        self.inner.finish_rebuild(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{Disk, DiskParams};
    use crate::raid::Jbod;
    use simcore::MIB;

    fn cached(cache_mib: u64) -> CachedVolume<Jbod> {
        CachedVolume::new(
            WriteCacheParams::controller(cache_mib),
            Jbod::new(Disk::new(DiskParams::sata_7200(150, 72), 1)),
        )
    }

    #[test]
    fn burst_within_cache_acks_at_controller_speed() {
        let mut v = cached(256);
        let mut now = Time::ZERO;
        let start = now;
        // 128 MiB burst fits in a 256 MiB cache.
        for i in 0..32u64 {
            now = v.submit(now, BlockReq::write(i * 4 * MIB, 4 * MIB)).ack;
        }
        let rate = Bandwidth::measured(128 * MIB, now - start).as_mib_per_sec();
        assert!(rate > 300.0, "burst absorbed at {rate} MiB/s");
    }

    #[test]
    fn sustained_stream_converges_to_disk_rate() {
        let mut v = cached(64);
        let mut now = Time::ZERO;
        let total_mb = 2048u64;
        for i in 0..(total_mb / 4) {
            now = v.submit(now, BlockReq::write(i * 4 * MIB, 4 * MIB)).ack;
        }
        let rate = Bandwidth::measured(total_mb * MIB, now).as_mib_per_sec();
        // Disk media rate for writes ≈ 72 * 0.94 ≈ 67.7 MiB/s; the cache can
        // only add its 64 MiB of slack.
        assert!(rate < 75.0, "sustained {rate} must approach disk rate");
        assert!(rate > 55.0, "sustained {rate} collapsed below disk rate");
    }

    #[test]
    fn durable_lags_ack() {
        let mut v = cached(256);
        let g = v.submit(Time::ZERO, BlockReq::write(0, 16 * MIB));
        assert!(g.durable > g.ack, "write-back must ack before durability");
    }

    #[test]
    fn read_passes_through() {
        let mut v = cached(256);
        let g = v.submit(Time::ZERO, BlockReq::read(0, MIB));
        assert_eq!(g.ack, g.durable);
        assert_eq!(v.meter().reads.ops(), 1);
    }

    #[test]
    fn flush_returns_backing_drain_time() {
        let mut v = cached(256);
        let g = v.submit(Time::ZERO, BlockReq::write(0, 16 * MIB));
        let t = v.flush(g.ack);
        assert!(t >= g.durable);
        assert_eq!(v.occupied(), 0);
    }

    #[test]
    fn oversized_request_degrades_to_write_through() {
        let mut v = cached(8);
        let g = v.submit(Time::ZERO, BlockReq::write(0, 64 * MIB));
        assert_eq!(g.ack, g.durable);
    }

    #[test]
    fn occupancy_expires_as_destage_completes() {
        let mut v = cached(256);
        let g = v.submit(Time::ZERO, BlockReq::write(0, 16 * MIB));
        assert_eq!(v.occupied(), 16 * MIB);
        // Submitting long after the destage completed releases the space.
        v.submit(
            g.durable + Time::from_secs(1),
            BlockReq::write(32 * MIB, MIB),
        );
        assert_eq!(v.occupied(), MIB);
    }
}
