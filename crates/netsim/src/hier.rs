//! Hierarchical (rack / leaf-spine) fabric with closed-form fast paths.
//!
//! Thousand-node clusters are cabled as racks of hosts under leaf
//! switches joined by a spine. The switching core is non-blocking — only
//! the per-host edge links (NIC TX/RX) ever queue — so the core
//! contributes pure additive hop latency and the edge links are the only
//! stateful resources. That makes the whole fabric resolve with the same
//! closed-form frame pipeline as [`crate::Fabric::send`], with the same
//! discipline: a *fault horizon* guards the closed forms, and any send
//! whose conservative completion bound crosses the horizon falls back to
//! the granular per-frame loop that applies per-frame bandwidth by frame
//! start time.

use crate::fabric::{FabricParams, NetMeter, NodeId};
use simcore::{FifoResource, Time};

/// Shape of the rack hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierTopology {
    /// Number of racks.
    pub racks: usize,
    /// Hosts per rack.
    pub hosts_per_rack: usize,
}

impl HierTopology {
    /// Total number of hosts.
    pub fn nodes(&self) -> usize {
        self.racks * self.hosts_per_rack
    }

    /// Rack containing `node`.
    pub fn rack_of(&self, node: NodeId) -> usize {
        node / self.hosts_per_rack
    }
}

/// Parameters of a leaf-spine fabric: the edge-link/frame parameters of a
/// flat fabric plus the switching-core hop latencies.
#[derive(Clone, Copy, Debug)]
pub struct HierParams {
    /// Edge-link characteristics (bandwidth, latency, frames, overhead).
    pub fabric: FabricParams,
    /// Extra one-way latency per leaf-switch traversal.
    pub leaf_hop: Time,
    /// Extra one-way latency for crossing the spine.
    pub spine_hop: Time,
}

impl HierParams {
    /// Gigabit Ethernet edges under a leaf-spine core with microsecond-
    /// scale cut-through switches.
    pub fn leaf_spine_gigabit() -> HierParams {
        HierParams {
            fabric: FabricParams::gigabit_ethernet(),
            leaf_hop: Time::from_micros(5),
            spine_hop: Time::from_micros(15),
        }
    }
}

/// A rack/leaf-spine fabric.
///
/// Same-rack messages traverse one leaf; cross-rack messages traverse
/// leaf → spine → leaf. Messages serialize frame by frame on the sender's
/// TX link and the receiver's RX link exactly as on [`crate::Fabric`];
/// uncontended subtrees resolve via closed forms, and scheduled rack
/// degradation (a fault horizon) forces the granular frame loop for any
/// send that might straddle it.
pub struct HierFabric {
    params: HierParams,
    topo: HierTopology,
    tx: Vec<FifoResource>,
    rx: Vec<FifoResource>,
    meter: NetMeter,
    /// First instant at which degraded service applies ([`Time::MAX`] when
    /// no degradation is scheduled). Frames whose wire transmission starts
    /// at or after the horizon serialize `slowdown`× slower.
    horizon: Time,
    slowdown: u64,
}

impl HierFabric {
    /// A fabric over `topo` with the given parameters.
    pub fn new(topo: HierTopology, params: HierParams) -> HierFabric {
        let n = topo.nodes();
        HierFabric {
            params,
            topo,
            tx: vec![FifoResource::new(); n],
            rx: vec![FifoResource::new(); n],
            meter: NetMeter::default(),
            horizon: Time::MAX,
            slowdown: 1,
        }
    }

    /// Number of hosts.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// The topology.
    pub fn topology(&self) -> HierTopology {
        self.topo
    }

    /// Fabric parameters.
    pub fn params(&self) -> &HierParams {
        &self.params
    }

    /// Traffic statistics.
    pub fn meter(&self) -> &NetMeter {
        &self.meter
    }

    /// Schedules fabric-wide degradation: frames starting at or after `at`
    /// serialize `slowdown`× slower (cable faults, oversubscribed
    /// failover paths). The fault horizon gates every closed form.
    pub fn degrade_at(&mut self, at: Time, slowdown: u64) {
        assert!(slowdown >= 1, "slowdown is a multiplier");
        self.horizon = at;
        self.slowdown = slowdown;
    }

    /// Additive core latency of the path `from` → `to`.
    fn hop_latency(&self, from: NodeId, to: NodeId) -> Time {
        let link = self.params.fabric.link.latency;
        if self.topo.rack_of(from) == self.topo.rack_of(to) {
            link + self.params.leaf_hop
        } else {
            link + self.params.leaf_hop * 2 + self.params.spine_hop
        }
    }

    /// Serialization time of `len` payload bytes on an edge link for a
    /// frame whose wire transmission starts at `start`.
    fn frame_service(&self, start: Time, len: u64) -> Time {
        let base = self.params.fabric.link.bandwidth.time_for(len);
        if start >= self.horizon {
            base * self.slowdown
        } else {
            base
        }
    }

    /// The closed-form frame pipeline of [`crate::Fabric::send`]: first
    /// and last frame individually, the F−2 full middle frames as runs
    /// (RX of frame 0 ends no earlier than TX of frame 1, so every middle
    /// frame queues directly behind its predecessor). `svc(len)` prices
    /// one frame; returns the last RX end.
    fn pipeline(
        tx: &mut FifoResource,
        rx: &mut FifoResource,
        t0: Time,
        bytes: u64,
        frame: u64,
        svc: impl Fn(u64) -> Time,
    ) -> Time {
        if bytes <= frame {
            let service = svc(bytes.max(1));
            let txg = tx.submit(t0, service);
            rx.submit(txg.end, service).end
        } else {
            let full = svc(frame);
            let tail = bytes - (bytes - 1) / frame * frame; // in (0, frame]
            let middle = (bytes - 1) / frame - 1;
            let txg0 = tx.submit(t0, full);
            let rxg0 = rx.submit(txg0.end, full);
            let tx_mid = tx.submit_run(txg0.end, full, middle);
            let rx_mid = rx.submit_run(txg0.end + full, full, middle);
            debug_assert_eq!(rx_mid.end, rxg0.end + full * middle);
            let txl = tx.submit(tx_mid.end, svc(tail));
            rx.submit(txl.end, svc(tail)).end
        }
    }

    /// Granular reference path: one submit per frame, each frame priced by
    /// its own wire start time — exact across the fault horizon.
    fn send_granular(&mut self, t0: Time, from: NodeId, to: NodeId, bytes: u64) -> Time {
        let frame = self.params.fabric.max_frame;
        let mut remaining = bytes;
        let mut t = t0;
        let mut last_rx_end;
        loop {
            let len = remaining.min(frame);
            let start = t.max(self.tx[from].free_at());
            let service = self.frame_service(start, len.max(1).min(remaining.max(1)));
            let txg = self.tx[from].submit(t, service);
            let rxg = self.rx[to].submit(txg.end, service);
            last_rx_end = rxg.end;
            t = txg.end;
            if remaining <= frame {
                break;
            }
            remaining -= len;
        }
        last_rx_end
    }

    /// Sends `bytes` from `from` to `to` starting at `now`; returns the
    /// delivery instant at the receiver.
    pub fn send(&mut self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Time {
        assert!(from < self.nodes() && to < self.nodes(), "unknown endpoint");
        let p = self.params.fabric;
        let delivered = if from == to {
            now + p.per_msg_overhead + p.loopback_bw.time_for(bytes)
        } else {
            let t0 = now + p.per_msg_overhead;
            let bw = p.link.bandwidth;
            let last_rx_end = if self.horizon == Time::MAX || {
                // Conservative bound on every frame's wire start: the last
                // TX start cannot exceed queue drain plus one whole
                // transfer (one extra frame pads integer rounding).
                let drained = t0.max(self.tx[from].free_at()).max(self.rx[to].free_at());
                drained + bw.time_for(bytes.max(1)) + bw.time_for(p.max_frame) < self.horizon
            } {
                // Entirely below the fault horizon: clean closed form.
                Self::pipeline(
                    &mut self.tx[from],
                    &mut self.rx[to],
                    t0,
                    bytes,
                    p.max_frame,
                    |l| bw.time_for(l),
                )
            } else if t0 >= self.horizon {
                // Entirely above the horizon: degraded closed form.
                let slow = self.slowdown;
                Self::pipeline(
                    &mut self.tx[from],
                    &mut self.rx[to],
                    t0,
                    bytes,
                    p.max_frame,
                    |l| bw.time_for(l) * slow,
                )
            } else {
                // Might straddle the horizon: event-level frame loop.
                self.send_granular(t0, from, to, bytes)
            };
            last_rx_end + self.hop_latency(from, to)
        };
        self.meter.messages += 1;
        self.meter.transfers.record(bytes, delivered - now);
        simcore::obs::emit(|| simcore::obs::ObsEvent::NetSend {
            from,
            to,
            bytes,
            start: now,
            end: delivered,
        });
        delivered
    }

    /// Closed-form *duration* of an uncontended transfer (idle edge links,
    /// below the fault horizon): pure — no fabric state is touched. This
    /// is what rank-invariant machine models price node-symmetric
    /// transport with.
    pub fn uncontended_delivery(&self, from: NodeId, to: NodeId, bytes: u64) -> Time {
        assert!(from < self.nodes() && to < self.nodes(), "unknown endpoint");
        let p = self.params.fabric;
        if from == to {
            return p.per_msg_overhead + p.loopback_bw.time_for(bytes);
        }
        let mut tx = FifoResource::new();
        let mut rx = FifoResource::new();
        let bw = p.link.bandwidth;
        let last = Self::pipeline(
            &mut tx,
            &mut rx,
            p.per_msg_overhead,
            bytes,
            p.max_frame,
            |l| bw.time_for(l),
        );
        last + self.hop_latency(from, to)
    }

    /// Delivery instant for a send issued at `now` *if* the involved edge
    /// links are quiescent and the transfer completes clear of the fault
    /// horizon; `None` when either link is busy or the horizon is in
    /// reach, in which case the caller must pay a real [`HierFabric::send`].
    /// Does not mutate the fabric.
    pub fn quote(&self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Option<Time> {
        assert!(from < self.nodes() && to < self.nodes(), "unknown endpoint");
        let delivered = now + self.uncontended_delivery(from, to, bytes);
        if from == to {
            return Some(delivered);
        }
        if self.tx[from].free_at() > now || self.rx[to].free_at() > now {
            return None;
        }
        if self.horizon != Time::MAX {
            let p = self.params.fabric;
            let bw = p.link.bandwidth;
            let bound =
                now + p.per_msg_overhead + bw.time_for(bytes.max(1)) + bw.time_for(p.max_frame);
            if bound >= self.horizon {
                return None;
            }
        }
        Some(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{Bandwidth, SplitMix64, MIB};

    fn topo() -> HierTopology {
        HierTopology {
            racks: 4,
            hosts_per_rack: 4,
        }
    }

    fn fabric() -> HierFabric {
        HierFabric::new(topo(), HierParams::leaf_spine_gigabit())
    }

    /// The per-frame reference loop, kept verbatim as ground truth for
    /// the equivalence test: one submit per frame, per-frame service
    /// priced by wire start time against the fault horizon.
    fn reference_send(f: &mut HierFabric, now: Time, from: usize, to: usize, bytes: u64) -> Time {
        let p = f.params.fabric;
        if from == to {
            let delivered = now + p.per_msg_overhead + p.loopback_bw.time_for(bytes);
            f.meter.messages += 1;
            f.meter.transfers.record(bytes, delivered - now);
            return delivered;
        }
        let mut remaining = bytes;
        let mut t = now + p.per_msg_overhead;
        let mut last_rx_end;
        loop {
            let len = remaining.min(p.max_frame);
            let start = t.max(f.tx[from].free_at());
            let service = f.frame_service(start, len.max(1).min(remaining.max(1)));
            let txg = f.tx[from].submit(t, service);
            let rxg = f.rx[to].submit(txg.end, service);
            last_rx_end = rxg.end;
            t = txg.end;
            if remaining <= p.max_frame {
                break;
            }
            remaining -= len;
        }
        let delivered = last_rx_end + f.hop_latency(from, to);
        f.meter.messages += 1;
        f.meter.transfers.record(bytes, delivered - now);
        delivered
    }

    #[test]
    fn closed_form_send_matches_the_frame_loop() {
        let params = HierParams::leaf_spine_gigabit();
        let frame = params.fabric.max_frame;
        let mut fast = HierFabric::new(topo(), params);
        let mut slow = HierFabric::new(topo(), params);
        // A fault horizon mid-run exercises all three paths: clean closed
        // form, degraded closed form, and the granular straddling loop.
        let horizon = Time::from_millis(400);
        fast.degrade_at(horizon, 3);
        slow.degrade_at(horizon, 3);
        let mut rng = SplitMix64::new(0x41e7);
        let mut now = Time::ZERO;
        for i in 0..300u64 {
            let from = rng.next_below(15) as usize;
            let to = 15usize;
            // Sizes straddle every regime: sub-frame, exact multiples,
            // multi-frame with tails, zero, and the occasional huge one.
            let bytes = match i % 5 {
                0 => rng.next_below(frame),
                1 => frame * (1 + rng.next_below(4)),
                2 => frame * (2 + rng.next_below(64)) + 1 + rng.next_below(1000),
                3 => 0,
                _ => rng.next_below(64 * MIB),
            };
            let a = fast.send(now, from, to, bytes);
            let b = reference_send(&mut slow, now, from, to, bytes);
            assert_eq!(a, b, "delivery diverged at message {i} ({bytes} bytes)");
            now += Time::from_micros(rng.next_below(5000));
        }
        assert_eq!(fast.meter().messages, slow.meter().messages);
        assert_eq!(
            fast.meter().transfers.bytes(),
            slow.meter().transfers.bytes()
        );
    }

    #[test]
    fn quote_matches_send_on_a_quiescent_fabric() {
        let mut rng = SplitMix64::new(0x9007e);
        for i in 0..50u64 {
            let mut f = fabric();
            let from = rng.next_below(16) as usize;
            let to = (from + 1 + rng.next_below(15) as usize) % 16;
            let bytes = rng.next_below(8 * MIB);
            let now = Time::from_micros(rng.next_below(10_000));
            let quoted = f.quote(now, from, to, bytes).expect("idle fabric quotes");
            let sent = f.send(now, from, to, bytes);
            assert_eq!(quoted, sent, "quote diverged at case {i}");
            // The links are busy now: the same quote must be refused.
            assert_eq!(f.quote(now, from, to, bytes), None);
        }
    }

    #[test]
    fn same_rack_is_faster_than_cross_rack() {
        let mut f = fabric();
        let local = f.send(Time::ZERO, 0, 1, 4096); // rack 0 → rack 0
        let mut g = fabric();
        let remote = g.send(Time::ZERO, 0, 5, 4096); // rack 0 → rack 1
        assert!(
            remote
                > local
                    + HierParams::leaf_spine_gigabit().leaf_hop
                    + HierParams::leaf_spine_gigabit().spine_hop
                    - Time::from_nanos(1),
            "cross-rack {remote:?} vs same-rack {local:?}"
        );
    }

    #[test]
    fn degradation_slows_sends_after_the_horizon() {
        let mut f = fabric();
        let clean = f.send(Time::ZERO, 0, 5, 4 * MIB);
        let mut g = fabric();
        g.degrade_at(Time::ZERO, 4);
        let degraded = g.send(Time::ZERO, 0, 5, 4 * MIB);
        let (c, d) = (clean.as_secs_f64(), degraded.as_secs_f64());
        assert!(d > c * 3.0, "degraded {d} vs clean {c}");
    }

    #[test]
    fn large_transfer_achieves_wire_speed() {
        let mut f = fabric();
        let bytes = 256 * MIB;
        let t = f.send(Time::ZERO, 0, 5, bytes);
        let rate = Bandwidth::measured(bytes, t).as_mib_per_sec();
        let wire = HierParams::leaf_spine_gigabit()
            .fabric
            .link
            .bandwidth
            .as_mib_per_sec();
        assert!(
            rate > wire * 0.9 && rate <= wire * 1.01,
            "rate {rate} vs wire {wire}"
        );
    }

    #[test]
    fn loopback_is_fast_and_uncontended_delivery_is_pure() {
        let mut f = fabric();
        let d1 = f.uncontended_delivery(0, 9, MIB);
        f.send(Time::ZERO, 0, 9, 64 * MIB); // congest the pair
        let d2 = f.uncontended_delivery(0, 9, MIB);
        assert_eq!(d1, d2, "uncontended_delivery must ignore fabric state");
        let t = f.send(Time::from_secs(100), 3, 3, 16 * MIB) - Time::from_secs(100);
        let rate = Bandwidth::measured(16 * MIB, t).as_mib_per_sec();
        assert!(rate > 1000.0, "loopback rate {rate}");
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn unknown_endpoint_panics() {
        fabric().send(Time::ZERO, 0, 99, 10);
    }
}
