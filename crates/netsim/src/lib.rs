//! # netsim — cluster interconnect models
//!
//! The clusters in the paper use one or two Gigabit Ethernet networks ("one
//! for communication and the other for data"). This crate models that:
//!
//! * [`Fabric`] — a full-duplex switched network: every node owns a TX and an
//!   RX link to a non-blocking switch; messages are fragmented into frames so
//!   concurrent flows toward a common endpoint interleave (approximate fair
//!   sharing), and each message pays a protocol-stack overhead plus
//!   propagation latency.
//! * [`Network`] — one or two fabrics plus a routing policy
//!   ([`TrafficClass`]): in a *shared* layout MPI traffic and storage traffic
//!   contend on one fabric; in a *split* layout each class gets its own — the
//!   configurable factor the paper varies ("number and type of network").
//! * [`HierFabric`] — a rack/leaf-spine hierarchy for thousand-node
//!   scale-out runs: stateful per-host edge links under a non-blocking
//!   core, with closed-form fast paths gated by a fault horizon.

pub mod fabric;
pub mod hier;

pub use fabric::{Fabric, FabricParams, LinkParams, NetMeter, Network, NodeId, TrafficClass};
pub use hier::{HierFabric, HierParams, HierTopology};
