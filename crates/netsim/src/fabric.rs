//! Switched full-duplex fabric with frame-level interleaving.

use serde::{Deserialize, Serialize};
use simcore::stats::TransferMeter;
use simcore::{Bandwidth, FifoResource, SplitMix64, Time};

/// Index of a node on the fabric.
pub type NodeId = usize;

/// Physical parameters of one link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkParams {
    /// Usable link bandwidth (payload rate after protocol framing).
    pub bandwidth: Bandwidth,
    /// One-way propagation + switching latency.
    pub latency: Time,
}

impl LinkParams {
    /// Gigabit Ethernet with TCP/IP framing: ~112 MiB/s payload, 80 µs of
    /// one-way latency, the fabric of both clusters in the paper.
    pub fn gigabit_ethernet() -> LinkParams {
        LinkParams {
            bandwidth: Bandwidth::from_bytes_per_sec(117_500_000),
            latency: Time::from_micros(80),
        }
    }
}

/// Parameters of a switched fabric.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FabricParams {
    /// Per-node link characteristics.
    pub link: LinkParams,
    /// Fragmentation unit: concurrent flows interleave at this granularity.
    pub max_frame: u64,
    /// Per-message software overhead (protocol stack traversal).
    pub per_msg_overhead: Time,
    /// Bandwidth for node-local (loopback) transfers.
    pub loopback_bw: Bandwidth,
}

impl FabricParams {
    /// A Gigabit Ethernet fabric with 64 KiB frames.
    pub fn gigabit_ethernet() -> FabricParams {
        FabricParams {
            link: LinkParams::gigabit_ethernet(),
            max_frame: 64 * 1024,
            per_msg_overhead: Time::from_micros(20),
            loopback_bw: Bandwidth::from_mib_per_sec(2500),
        }
    }
}

/// Aggregate traffic statistics of a fabric.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetMeter {
    /// All transfers (bytes and in-flight time per message).
    pub transfers: TransferMeter,
    /// Number of messages sent.
    pub messages: u64,
}

/// A non-blocking switch with one full-duplex link per node.
///
/// A message from `a` to `b` serializes on `a`'s TX link and `b`'s RX link
/// frame by frame (TX of frame *k+1* overlaps RX of frame *k*, so long
/// transfers run at wire speed); delivery is when the last frame clears the
/// RX link plus propagation latency. Messages on a common link are served
/// FIFO, so concurrent workloads interleave at message/RPC granularity —
/// the resolution the cluster I/O models need.
pub struct Fabric {
    params: FabricParams,
    tx: Vec<FifoResource>,
    rx: Vec<FifoResource>,
    meter: NetMeter,
}

impl Fabric {
    /// A fabric connecting `nodes` endpoints.
    pub fn new(nodes: usize, params: FabricParams) -> Fabric {
        Fabric {
            params,
            tx: vec![FifoResource::new(); nodes],
            rx: vec![FifoResource::new(); nodes],
            meter: NetMeter::default(),
        }
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Fabric parameters.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// Traffic statistics.
    pub fn meter(&self) -> &NetMeter {
        &self.meter
    }

    /// Sends `bytes` from `from` to `to` starting at `now`; returns the
    /// delivery instant at the receiver.
    pub fn send(&mut self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Time {
        assert!(from < self.nodes() && to < self.nodes(), "unknown endpoint");
        let delivered = if from == to {
            // Loopback: memory copy, no link involvement.
            now + self.params.per_msg_overhead + self.params.loopback_bw.time_for(bytes)
        } else {
            let bw = self.params.link.bandwidth;
            let frame = self.params.max_frame;
            let t0 = now + self.params.per_msg_overhead;
            let last_rx_end = if bytes <= frame {
                // Single frame (zero-byte messages still cross the wire).
                let service = bw.time_for(bytes.max(1));
                let txg = self.tx[from].submit(t0, service);
                self.rx[to].submit(txg.end, service).end
            } else {
                // F = ceil(bytes/frame) ≥ 2 frames: first and last go down
                // individually, the F−2 full middle frames as closed-form
                // runs. The per-frame RX chain collapses exactly: RX of
                // frame 0 ends no earlier than TX of frame 1 (equal
                // service), so every middle frame finds the RX link busy
                // and queues directly behind its predecessor.
                let full = bw.time_for(frame);
                let tail = bytes - (bytes - 1) / frame * frame; // in (0, frame]
                let middle = (bytes - 1) / frame - 1;
                let txg0 = self.tx[from].submit(t0, full);
                let rxg0 = self.rx[to].submit(txg0.end, full);
                let tx_mid = self.tx[from].submit_run(txg0.end, full, middle);
                let rx_mid = self.rx[to].submit_run(txg0.end + full, full, middle);
                debug_assert_eq!(rx_mid.end, rxg0.end + full * middle);
                let txl = self.tx[from].submit(tx_mid.end, bw.time_for(tail));
                self.rx[to].submit(txl.end, bw.time_for(tail)).end
            };
            last_rx_end + self.params.link.latency
        };
        self.meter.messages += 1;
        self.meter.transfers.record(bytes, delivered - now);
        simcore::obs::emit(|| simcore::obs::ObsEvent::NetSend {
            from,
            to,
            bytes,
            start: now,
            end: delivered,
        });
        delivered
    }
}

/// How a message should be routed across the cluster's networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// MPI point-to-point / collective traffic.
    Mpi,
    /// Storage traffic (NFS RPCs, parallel-FS transfers).
    Storage,
}

/// Sender-observed retransmission delay after a lost message (a fast
/// retransmit at transport level, not a full RTO).
const RETRANS_DELAY: Time = Time::from_millis(1);

/// Loss/duplication state of one traffic class (fault injection).
#[derive(Clone, Debug)]
struct Degradation {
    /// Probability the first copy of a message is lost in flight.
    drop: f64,
    /// Probability a message is transmitted twice.
    duplicate: f64,
    /// Deterministic per-class stream deciding each message's fate.
    rng: SplitMix64,
}

/// One or two fabrics plus the routing policy between traffic classes.
pub struct Network {
    fabrics: Vec<Fabric>,
    /// `route[class]` is the fabric index for that class.
    route_mpi: usize,
    route_storage: usize,
    degrade_mpi: Option<Degradation>,
    degrade_storage: Option<Degradation>,
}

impl Network {
    /// A single fabric carrying both classes (the "shared" layout).
    pub fn shared(nodes: usize, params: FabricParams) -> Network {
        Network {
            fabrics: vec![Fabric::new(nodes, params)],
            route_mpi: 0,
            route_storage: 0,
            degrade_mpi: None,
            degrade_storage: None,
        }
    }

    /// Two fabrics: communication and data networks (the paper's clusters).
    pub fn split(nodes: usize, params: FabricParams) -> Network {
        Network {
            fabrics: vec![Fabric::new(nodes, params), Fabric::new(nodes, params)],
            route_mpi: 0,
            route_storage: 1,
            degrade_mpi: None,
            degrade_storage: None,
        }
    }

    /// Starts dropping and/or duplicating `class` messages with the given
    /// probabilities, decided by a deterministic stream seeded with `seed`.
    /// Probabilities are clamped to `[0, 1]`.
    pub fn set_degradation(&mut self, class: TrafficClass, drop: f64, duplicate: f64, seed: u64) {
        let state = Some(Degradation {
            drop: drop.clamp(0.0, 1.0),
            duplicate: duplicate.clamp(0.0, 1.0),
            rng: SplitMix64::new(seed),
        });
        match class {
            TrafficClass::Mpi => self.degrade_mpi = state,
            TrafficClass::Storage => self.degrade_storage = state,
        }
    }

    /// Returns `class` to lossless service.
    pub fn clear_degradation(&mut self, class: TrafficClass) {
        match class {
            TrafficClass::Mpi => self.degrade_mpi = None,
            TrafficClass::Storage => self.degrade_storage = None,
        }
    }

    /// Whether `class` currently drops or duplicates messages.
    pub fn is_degraded(&self, class: TrafficClass) -> bool {
        match class {
            TrafficClass::Mpi => self.degrade_mpi.is_some(),
            TrafficClass::Storage => self.degrade_storage.is_some(),
        }
    }

    /// Whether storage traffic has a dedicated fabric.
    pub fn is_split(&self) -> bool {
        self.route_mpi != self.route_storage
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.fabrics[0].nodes()
    }

    /// Sends a message of the given class; returns delivery time.
    ///
    /// Under degradation a dropped message burns the wire for the doomed
    /// copy, waits a fast-retransmit delay at the sender, then goes again
    /// (loss applies at most once per message, as transport retransmissions
    /// rarely lose twice in a row at these rates); a duplicated message
    /// sends a second bandwidth-consuming copy but delivery is the first.
    pub fn send(
        &mut self,
        now: Time,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        class: TrafficClass,
    ) -> Time {
        let idx = match class {
            TrafficClass::Mpi => self.route_mpi,
            TrafficClass::Storage => self.route_storage,
        };
        let (dropped, duplicated) = match match class {
            TrafficClass::Mpi => &mut self.degrade_mpi,
            TrafficClass::Storage => &mut self.degrade_storage,
        } {
            Some(d) => (
                d.drop > 0.0 && d.rng.next_f64() < d.drop,
                d.duplicate > 0.0 && d.rng.next_f64() < d.duplicate,
            ),
            None => (false, false),
        };
        let fabric = &mut self.fabrics[idx];
        let mut t = now;
        if dropped {
            let doomed = fabric.send(t, from, to, bytes);
            t = doomed + RETRANS_DELAY;
        }
        let delivered = fabric.send(t, from, to, bytes);
        if duplicated {
            fabric.send(t, from, to, bytes);
        }
        delivered
    }

    /// The fabric serving a class (for meters).
    pub fn fabric(&self, class: TrafficClass) -> &Fabric {
        let idx = match class {
            TrafficClass::Mpi => self.route_mpi,
            TrafficClass::Storage => self.route_storage,
        };
        &self.fabrics[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::MIB;

    fn fabric(n: usize) -> Fabric {
        Fabric::new(n, FabricParams::gigabit_ethernet())
    }

    #[test]
    fn small_message_cost_is_latency_dominated() {
        let mut f = fabric(4);
        let t = f.send(Time::ZERO, 0, 1, 1);
        let us = t.as_micros_f64();
        // overhead 20 + latency 80 + negligible serialization.
        assert!(us > 99.0 && us < 140.0, "1-byte latency = {us}us");
    }

    #[test]
    fn large_transfer_achieves_wire_speed() {
        let mut f = fabric(2);
        let bytes = 512 * MIB;
        let t = f.send(Time::ZERO, 0, 1, bytes);
        let rate = Bandwidth::measured(bytes, t).as_mib_per_sec();
        let wire = FabricParams::gigabit_ethernet()
            .link
            .bandwidth
            .as_mib_per_sec();
        assert!(
            rate > wire * 0.9 && rate <= wire * 1.01,
            "rate {rate} vs wire {wire}"
        );
    }

    #[test]
    fn two_senders_share_receiver_link() {
        let mut f = fabric(3);
        let bytes = 64 * MIB;
        // Interleave the two flows frame by frame as concurrent senders do.
        let t1 = f.send(Time::ZERO, 0, 2, bytes);
        let t2 = f.send(Time::ZERO, 1, 2, bytes);
        let finish = t1.max(t2);
        let agg = Bandwidth::measured(2 * bytes, finish).as_mib_per_sec();
        let wire = FabricParams::gigabit_ethernet()
            .link
            .bandwidth
            .as_mib_per_sec();
        // Aggregate into one receiver cannot exceed its RX link.
        assert!(agg <= wire * 1.02, "aggregate {agg} vs wire {wire}");
        // And both flows finish roughly together (they shared the RX link).
        assert!(finish.as_secs_f64() > (bytes * 2) as f64 / (wire * MIB as f64) * 0.9);
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut f = fabric(4);
        let bytes = 64 * MIB;
        let t1 = f.send(Time::ZERO, 0, 1, bytes);
        let t2 = f.send(Time::ZERO, 2, 3, bytes);
        // A non-blocking switch carries disjoint pairs in parallel.
        let each = Bandwidth::measured(bytes, t1.max(t2)).as_mib_per_sec();
        assert!(each > 100.0, "disjoint flows at {each} MiB/s each");
    }

    #[test]
    fn loopback_is_fast() {
        let mut f = fabric(2);
        let t = f.send(Time::ZERO, 1, 1, 16 * MIB);
        let rate = Bandwidth::measured(16 * MIB, t).as_mib_per_sec();
        assert!(rate > 1000.0, "loopback rate {rate}");
    }

    #[test]
    fn zero_byte_message_still_has_latency() {
        let mut f = fabric(2);
        let t = f.send(Time::ZERO, 0, 1, 0);
        assert!(t > Time::from_micros(90));
    }

    #[test]
    fn meter_counts_messages_and_bytes() {
        let mut f = fabric(2);
        f.send(Time::ZERO, 0, 1, 1000);
        f.send(Time::from_secs(1), 1, 0, 2000);
        assert_eq!(f.meter().messages, 2);
        assert_eq!(f.meter().transfers.bytes(), 3000);
    }

    #[test]
    fn split_network_isolates_storage_from_mpi() {
        let bytes = 64 * MIB;
        // Shared: storage and MPI fight over node 0's TX link.
        let mut shared = Network::shared(3, FabricParams::gigabit_ethernet());
        let s1 = shared.send(Time::ZERO, 0, 1, bytes, TrafficClass::Mpi);
        let s2 = shared.send(Time::ZERO, 0, 2, bytes, TrafficClass::Storage);
        let shared_finish = s1.max(s2);

        let mut split = Network::split(3, FabricParams::gigabit_ethernet());
        let p1 = split.send(Time::ZERO, 0, 1, bytes, TrafficClass::Mpi);
        let p2 = split.send(Time::ZERO, 0, 2, bytes, TrafficClass::Storage);
        let split_finish = p1.max(p2);

        assert!(
            shared_finish.as_secs_f64() > split_finish.as_secs_f64() * 1.7,
            "shared {shared_finish:?} vs split {split_finish:?}"
        );
        assert!(split.is_split());
        assert!(!shared.is_split());
    }

    /// The pre-closed-form frame loop, kept verbatim as the reference
    /// implementation for the equivalence test below.
    fn reference_send(f: &mut Fabric, now: Time, from: usize, to: usize, bytes: u64) -> Time {
        let params = f.params;
        let bw = params.link.bandwidth;
        let mut remaining = bytes;
        let mut t = now + params.per_msg_overhead;
        let mut last_rx_end;
        loop {
            let frame = remaining.min(params.max_frame);
            let service = bw.time_for(frame.max(1).min(remaining.max(1)));
            let txg = f.tx[from].submit(t, service);
            let rxg = f.rx[to].submit(txg.end, service);
            last_rx_end = rxg.end;
            t = txg.end;
            if remaining <= params.max_frame {
                break;
            }
            remaining -= frame;
        }
        f.meter.messages += 1;
        f.meter
            .transfers
            .record(bytes, last_rx_end + params.link.latency - now);
        last_rx_end + params.link.latency
    }

    #[test]
    fn closed_form_send_matches_the_frame_loop() {
        let params = FabricParams::gigabit_ethernet();
        let mut fast = Fabric::new(4, params);
        let mut slow = Fabric::new(4, params);
        let mut rng = SplitMix64::new(0xfab);
        let mut now = Time::ZERO;
        for i in 0..200u64 {
            let from = (rng.next_below(3)) as usize;
            let to = 3usize;
            // Sizes straddle every regime: sub-frame, exact multiples,
            // multi-frame with tails, and the occasional huge transfer.
            let bytes = match i % 5 {
                0 => rng.next_below(params.max_frame),
                1 => params.max_frame * (1 + rng.next_below(4)),
                2 => params.max_frame * (2 + rng.next_below(64)) + 1 + rng.next_below(1000),
                3 => 0,
                _ => rng.next_below(256 * MIB),
            };
            let a = fast.send(now, from, to, bytes);
            let b = reference_send(&mut slow, now, from, to, bytes);
            assert_eq!(a, b, "delivery diverged at message {i} ({bytes} bytes)");
            now += Time::from_micros(rng.next_below(500));
        }
        assert_eq!(fast.meter().messages, slow.meter().messages);
        assert_eq!(
            fast.meter().transfers.bytes(),
            slow.meter().transfers.bytes()
        );
    }

    #[test]
    fn send_is_deterministic() {
        let run = || {
            let mut f = fabric(4);
            let mut t = Time::ZERO;
            for i in 0..20u64 {
                t = f.send(t, (i % 3) as usize, 3, i * 1000 + 1);
            }
            t
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn unknown_endpoint_panics() {
        fabric(2).send(Time::ZERO, 0, 5, 10);
    }

    #[test]
    fn shared_and_split_expose_same_fabric_for_mpi() {
        let shared = Network::shared(4, FabricParams::gigabit_ethernet());
        assert_eq!(shared.nodes(), 4);
        // In a shared network both classes report the same meter object.
        let mut shared = shared;
        shared.send(Time::ZERO, 0, 1, 100, TrafficClass::Mpi);
        shared.send(Time::ZERO, 0, 1, 100, TrafficClass::Storage);
        assert_eq!(shared.fabric(TrafficClass::Mpi).meter().messages, 2);

        let mut split = Network::split(4, FabricParams::gigabit_ethernet());
        split.send(Time::ZERO, 0, 1, 100, TrafficClass::Mpi);
        split.send(Time::ZERO, 0, 1, 100, TrafficClass::Storage);
        assert_eq!(split.fabric(TrafficClass::Mpi).meter().messages, 1);
        assert_eq!(split.fabric(TrafficClass::Storage).meter().messages, 1);
    }

    #[test]
    fn pipelined_frames_overlap_tx_and_rx() {
        // A transfer of N frames should take ~N+1 frame times end to end,
        // not 2N (TX of frame k+1 overlaps RX of frame k).
        let mut f = fabric(2);
        let params = FabricParams::gigabit_ethernet();
        let frames = 64u64;
        let bytes = frames * params.max_frame;
        let t = f.send(Time::ZERO, 0, 1, bytes);
        let frame_time = params.link.bandwidth.time_for(params.max_frame);
        let serialized_upper = frame_time * (frames + 2);
        assert!(
            t < serialized_upper,
            "transfer {t:?} not pipelined (bound {serialized_upper:?})"
        );
        assert!(t > frame_time * frames, "faster than the wire");
    }

    #[test]
    fn later_messages_queue_behind_earlier_ones_on_a_link() {
        let mut f = fabric(2);
        let t1 = f.send(Time::ZERO, 0, 1, 10 * MIB);
        let t2 = f.send(Time::ZERO, 0, 1, 1);
        assert!(t2 > t1, "small message must wait behind the bulk transfer");
    }

    #[test]
    fn dropped_messages_pay_wire_plus_retransmit() {
        let mut clean = Network::shared(2, FabricParams::gigabit_ethernet());
        let baseline = clean.send(Time::ZERO, 0, 1, MIB, TrafficClass::Storage);

        let mut lossy = Network::shared(2, FabricParams::gigabit_ethernet());
        lossy.set_degradation(TrafficClass::Storage, 1.0, 0.0, 7);
        assert!(lossy.is_degraded(TrafficClass::Storage));
        let t = lossy.send(Time::ZERO, 0, 1, MIB, TrafficClass::Storage);
        // Lost copy + retransmit delay + second full copy.
        assert!(
            t.as_secs_f64() > baseline.as_secs_f64() * 1.8,
            "dropped delivery {t:?} vs baseline {baseline:?}"
        );
        // Both copies crossed the wire.
        assert_eq!(lossy.fabric(TrafficClass::Storage).meter().messages, 2);
    }

    #[test]
    fn duplicates_burn_bandwidth_without_delaying_delivery() {
        let mut clean = Network::shared(2, FabricParams::gigabit_ethernet());
        let baseline = clean.send(Time::ZERO, 0, 1, MIB, TrafficClass::Storage);

        let mut dupey = Network::shared(2, FabricParams::gigabit_ethernet());
        dupey.set_degradation(TrafficClass::Storage, 0.0, 1.0, 7);
        let t = dupey.send(Time::ZERO, 0, 1, MIB, TrafficClass::Storage);
        assert_eq!(t, baseline, "the first copy still delivers on time");
        assert_eq!(dupey.fabric(TrafficClass::Storage).meter().messages, 2);
        // The duplicate occupies the link, delaying the NEXT message.
        let next = dupey.send(t, 0, 1, MIB, TrafficClass::Storage);
        let clean_next = clean.send(baseline, 0, 1, MIB, TrafficClass::Storage);
        assert!(next > clean_next, "duplicate must congest the link");
    }

    #[test]
    fn degradation_is_per_class_and_clearable() {
        let mut net = Network::split(2, FabricParams::gigabit_ethernet());
        net.set_degradation(TrafficClass::Storage, 1.0, 0.0, 3);
        assert!(net.is_degraded(TrafficClass::Storage));
        assert!(!net.is_degraded(TrafficClass::Mpi));
        net.send(Time::ZERO, 0, 1, 1000, TrafficClass::Mpi);
        assert_eq!(net.fabric(TrafficClass::Mpi).meter().messages, 1);
        net.clear_degradation(TrafficClass::Storage);
        assert!(!net.is_degraded(TrafficClass::Storage));
        net.send(Time::ZERO, 0, 1, 1000, TrafficClass::Storage);
        assert_eq!(net.fabric(TrafficClass::Storage).meter().messages, 1);
    }

    #[test]
    fn degraded_sends_are_deterministic() {
        let run = || {
            let mut net = Network::shared(3, FabricParams::gigabit_ethernet());
            net.set_degradation(TrafficClass::Storage, 0.3, 0.2, 99);
            let mut t = Time::ZERO;
            for i in 0..50u64 {
                t = net.send(t, (i % 2) as usize, 2, 64 * 1024, TrafficClass::Storage);
            }
            t
        };
        assert_eq!(run(), run());
    }
}
