//! Property tests of the fabric invariants.

use netsim::{Fabric, FabricParams, Network, TrafficClass};
use proptest::prelude::*;
use simcore::Time;

proptest! {
    /// Delivery never precedes send time plus the physical minimum
    /// (stack overhead + propagation latency), and per-link delivery
    /// times are nondecreasing for a fixed (src, dst) pair.
    #[test]
    fn delivery_respects_physics(
        msgs in proptest::collection::vec((0usize..4, 0usize..4, 1u64..10_000_000), 1..60)
    ) {
        let params = FabricParams::gigabit_ethernet();
        let min_cost = params.per_msg_overhead + params.link.latency;
        let mut f = Fabric::new(4, params);
        let mut now = Time::ZERO;
        let mut last_per_pair = std::collections::HashMap::new();
        for (from, to, bytes) in msgs {
            let t = f.send(now, from, to, bytes);
            prop_assert!(t >= now, "delivery precedes send");
            if from != to {
                prop_assert!(t >= now + min_cost, "faster than the wire minimum");
                let prev = last_per_pair.insert((from, to), t);
                if let Some(p) = prev {
                    prop_assert!(t >= p, "per-pair FIFO violated");
                }
            }
            // Advance issuance time slightly to keep submissions ordered.
            now += Time::from_micros(1);
        }
    }

    /// Larger messages never arrive sooner than smaller ones sent at the
    /// same instant on a fresh fabric.
    #[test]
    fn cost_monotone_in_size(bytes in 1u64..100_000_000) {
        let params = FabricParams::gigabit_ethernet();
        let t_small = Fabric::new(2, params).send(Time::ZERO, 0, 1, bytes);
        let t_big = Fabric::new(2, params).send(Time::ZERO, 0, 1, bytes + 1500);
        prop_assert!(t_big >= t_small);
    }

    /// A shared network is never faster than a split one for mixed traffic.
    #[test]
    fn shared_never_beats_split(
        flows in proptest::collection::vec((any::<bool>(), 1u64..5_000_000), 2..20)
    ) {
        let params = FabricParams::gigabit_ethernet();
        let run = |net: &mut Network| {
            let mut done = Time::ZERO;
            for (i, &(is_storage, bytes)) in flows.iter().enumerate() {
                let class = if is_storage {
                    TrafficClass::Storage
                } else {
                    TrafficClass::Mpi
                };
                let t = net.send(
                    Time::from_micros(i as u64),
                    0,
                    1,
                    bytes,
                    class,
                );
                done = done.max(t);
            }
            done
        };
        let shared = run(&mut Network::shared(2, params));
        let split = run(&mut Network::split(2, params));
        prop_assert!(shared >= split, "shared {shared:?} beat split {split:?}");
    }
}
