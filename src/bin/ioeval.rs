//! `ioeval` — apply the methodology from the command line.
//!
//! ```text
//! ioeval characterize --cluster aohyper --config raid5 [--quick] [--out tables.json]
//! ioeval evaluate     --cluster aohyper --config raid5 --tables tables.json --app btio-full [--procs 16]
//! ioeval advise       --cluster aohyper --app madbench-shared --tables a.json b.json ...
//! ioeval list
//! ```
//!
//! `characterize` produces a performance-table JSON file (the artifact the
//! paper's evaluation phase consumes); `evaluate` runs an application on a
//! configuration and prints the metrics plus the used-percentage table;
//! `advise` ranks previously characterized configurations for an
//! application without running it on each.

use cluster_io_eval::prelude::*;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    match cmd.as_str() {
        "characterize" => characterize(&args[1..]),
        "evaluate" => evaluate_cmd(&args[1..]),
        "advise" => advise(&args[1..]),
        "list" => list(),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("ioeval: unknown command '{other}'");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  ioeval characterize --cluster <name> --config <name> [--quick] [--out FILE]\n  \
         ioeval evaluate --cluster <name> --config <name> --tables FILE --app <name> [--procs N] [--trace FILE]\n  \
         ioeval advise --cluster <name> --app <name> [--procs N] --tables FILE...\n  \
         ioeval list"
    );
}

fn list() {
    println!("clusters:  aohyper | cluster-a | test");
    println!("configs:   jbod | raid1 | raid5 | raid5-shared-net | raid5-pfs4");
    println!(
        "apps:      btio-full | btio-simple | madbench-unique | madbench-shared | flash-io | ior-write | ior-read"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn die(msg: &str) -> ! {
    eprintln!("ioeval: {msg}");
    exit(2);
}

fn cluster_by_name(name: &str) -> ClusterSpec {
    match name {
        "aohyper" => cluster::presets::aohyper(),
        "cluster-a" | "cluster_a" => cluster::presets::cluster_a(),
        "test" => cluster::presets::test_cluster(),
        other => die(&format!("unknown cluster '{other}' (see 'ioeval list')")),
    }
}

fn config_by_name(name: &str) -> IoConfig {
    match name {
        "jbod" => IoConfigBuilder::new(DeviceLayout::Jbod)
            .write_cache_mib(0)
            .build(),
        "raid1" => IoConfigBuilder::new(DeviceLayout::Raid1).build(),
        "raid5" => IoConfigBuilder::new(DeviceLayout::raid5_paper()).build(),
        "raid5-shared-net" => IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .network(NetworkLayout::Shared)
            .name("raid5-shared-net")
            .build(),
        "raid5-pfs4" => IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .pfs(4)
            .name("raid5-pfs4")
            .build(),
        other => die(&format!("unknown config '{other}' (see 'ioeval list')")),
    }
}

fn app_by_name(name: &str, procs: usize, quick: bool) -> Scenario {
    match name {
        "btio-full" | "btio-simple" => {
            let subtype = if name.ends_with("full") {
                BtSubtype::Full
            } else {
                BtSubtype::Simple
            };
            let bt = if quick {
                BtIo::new(BtClass::A, procs, subtype).with_dumps(8)
            } else {
                BtIo::new(BtClass::C, procs, subtype)
            };
            bt.scenario()
        }
        "madbench-unique" | "madbench-shared" => {
            let ft = if name.ends_with("unique") {
                FileType::Unique
            } else {
                FileType::Shared
            };
            let mb = if quick {
                MadBench::new(procs, ft).with_kpix(4)
            } else {
                MadBench::new(procs, ft)
            };
            mb.scenario()
        }
        "flash-io" => {
            let f = if quick {
                cluster_io_eval::workloads::FlashIo::new(procs).quick()
            } else {
                cluster_io_eval::workloads::FlashIo::new(procs)
            };
            f.scenario()
        }
        "ior-write" | "ior-read" => {
            let op = if name.ends_with("write") {
                workloads::ior::IorOp::Write
            } else {
                workloads::ior::IorOp::Read
            };
            Ior::new(
                procs,
                cluster_io_eval::fs::FileId(0x10AD),
                if quick { 16 * MIB } else { 256 * MIB },
                op,
            )
            .scenario()
        }
        other => die(&format!("unknown app '{other}' (see 'ioeval list')")),
    }
}

fn characterize(args: &[String]) {
    let spec =
        cluster_by_name(&flag(args, "--cluster").unwrap_or_else(|| die("--cluster required")));
    let config =
        config_by_name(&flag(args, "--config").unwrap_or_else(|| die("--config required")));
    let opts = if has(args, "--quick") {
        CharacterizeOptions::quick()
    } else {
        CharacterizeOptions::paper()
    };
    eprintln!(
        "[ioeval] characterizing {} / {} ({} records x {} modes + {} IOR blocks) ...",
        spec.name,
        config.name,
        opts.records.len(),
        opts.modes.len(),
        opts.ior_blocks.len()
    );
    let tables = characterize_system(&spec, &config, &opts)
        .unwrap_or_else(|e| die(&format!("characterization failed: {e}")));
    println!("{}", report::render_table_set(&tables));
    if let Some(path) = flag(args, "--out") {
        std::fs::write(&path, tables.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("[ioeval] wrote {path}");
    }
}

fn load_tables(path: &str) -> PerfTableSet {
    let s =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    PerfTableSet::from_json(&s).unwrap_or_else(|e| die(&format!("bad tables file {path}: {e}")))
}

fn evaluate_cmd(args: &[String]) {
    let spec =
        cluster_by_name(&flag(args, "--cluster").unwrap_or_else(|| die("--cluster required")));
    let config =
        config_by_name(&flag(args, "--config").unwrap_or_else(|| die("--config required")));
    let tables = load_tables(&flag(args, "--tables").unwrap_or_else(|| die("--tables required")));
    let procs: usize = flag(args, "--procs")
        .map(|p| {
            p.parse()
                .unwrap_or_else(|_| die("--procs must be a number"))
        })
        .unwrap_or(16);
    let app = app_by_name(
        &flag(args, "--app").unwrap_or_else(|| die("--app required")),
        procs,
        has(args, "--quick"),
    );
    let name = app.name.clone();
    eprintln!(
        "[ioeval] evaluating {name} on {} / {} ...",
        spec.name, config.name
    );
    // Optional Chrome-trace capture of the run (open in ui.perfetto.dev).
    if let Some(trace_path) = flag(args, "--trace") {
        use cluster_io_eval::methodology::ChromeTraceSink;
        use cluster_io_eval::mpisim::Runtime;
        let mut machine =
            ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        let programs = app.install(&mut machine);
        let mut sink = ChromeTraceSink::new(2_000_000);
        Runtime::default().run(&mut machine, &spec.placement(procs), programs, &mut sink);
        std::fs::write(&trace_path, sink.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {trace_path}: {e}")));
        eprintln!(
            "[ioeval] wrote {trace_path} ({} events{}) — open in chrome://tracing or ui.perfetto.dev",
            sink.len(),
            if sink.dropped() > 0 {
                format!(", {} dropped", sink.dropped())
            } else {
                String::new()
            }
        );
        return;
    }
    let rep = evaluate(&spec, &config, app, &tables, &EvalOptions::default())
        .unwrap_or_else(|e| die(&format!("evaluation failed: {e}")));
    println!("application:   {name}");
    println!(
        "execution {}   I/O {} ({:.1}% of runtime)   write {}   read {}",
        rep.exec_time,
        rep.io_time,
        rep.io_fraction() * 100.0,
        rep.write_rate,
        rep.read_rate
    );
    println!(
        "\ntimeline:\n{}",
        report::render_phase_timeline(&rep.profile, 100)
    );
    println!("used percentage of characterized capacity:");
    for op in [OpType::Write, OpType::Read] {
        for level in IoLevel::ALL {
            if let Some(pct) = rep.usage_summary(op, level) {
                println!("  {op:<5} @ {:<8} {pct:>8.1}%", level.label());
            }
        }
    }
}

fn advise(args: &[String]) {
    let spec =
        cluster_by_name(&flag(args, "--cluster").unwrap_or_else(|| die("--cluster required")));
    let procs: usize = flag(args, "--procs")
        .map(|p| {
            p.parse()
                .unwrap_or_else(|_| die("--procs must be a number"))
        })
        .unwrap_or(16);
    let app_name = flag(args, "--app").unwrap_or_else(|| die("--app required"));
    // All positional values after --tables are table files.
    let ti = args
        .iter()
        .position(|a| a == "--tables")
        .unwrap_or_else(|| die("--tables required"));
    let table_files: Vec<&String> = args[ti + 1..]
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .collect();
    if table_files.is_empty() {
        die("--tables needs at least one file");
    }
    let sets: Vec<PerfTableSet> = table_files.iter().map(|p| load_tables(p)).collect();

    // Profile the application once on the first configuration's cluster
    // (the paper: the application characterization transfers).
    let app = app_by_name(&app_name, procs, has(args, "--quick"));
    let any_config = config_by_name("jbod");
    eprintln!("[ioeval] profiling {app_name} ...");
    let profile = characterize_app(&spec, &any_config, app, None)
        .unwrap_or_else(|e| die(&format!("profiling failed: {e}")));

    let ranked = cluster_io_eval::methodology::advisor::rank_configs(&profile, sets.iter());
    if ranked.is_empty() {
        die("no candidate tables cover this application");
    }
    println!("ranking for {app_name} (best first):");
    for (i, p) in ranked.iter().enumerate() {
        println!(
            "  {}. {:<18} predicted I/O time {:>12}  bottleneck: {}",
            i + 1,
            p.config,
            format!("{}", p.io_time),
            p.bottleneck.label()
        );
    }
}
