//! # cluster-io-eval
//!
//! A full reproduction of *"Methodology for Performance Evaluation of the
//! Input/Output System on Computer Clusters"* (Méndez, Rexachs, Luque —
//! IEEE CLUSTER 2011) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API so examples and
//! downstream users need a single dependency:
//!
//! * [`simcore`] — discrete-event simulation kernel.
//! * [`storage`] — disks, write-back caches, JBOD/RAID volumes.
//! * [`netsim`] — cluster interconnect models.
//! * [`fs`] — page cache, local filesystem, NFS client/server.
//! * [`mpisim`] — simulated MPI runtime with MPI-IO.
//! * [`cluster`] — node/cluster specs and the paper's two cluster presets.
//! * [`workloads`] — IOzone/IOR-like characterization workloads, NAS BT-IO,
//!   MADbench2.
//! * [`methodology`] (crate `ioeval-core`) — the paper's contribution:
//!   performance tables, characterization, tracing, evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use cluster_io_eval::prelude::*;
//!
//! // A small cluster so doctests stay fast.
//! let spec = cluster::presets::test_cluster();
//! let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
//!
//! // Phase 1a: characterize the system's I/O path levels. Both phases
//! // return typed errors (bad configuration, watchdog abort) instead of
//! // panicking.
//! let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick())
//!     .expect("valid configuration, no watchdog");
//! assert!(tables.get(IoLevel::LocalFs).is_some());
//!
//! // Phase 3: evaluate an application against the characterization.
//! let app = workloads::BtIo::new(workloads::BtClass::S, 4, workloads::BtSubtype::Full)
//!     .with_dumps(2)
//!     .gflops(50.0);
//! let report = evaluate(&spec, &config, app.scenario(), &tables, &EvalOptions::default())
//!     .expect("valid configuration, no watchdog");
//! assert!(report.usage_summary(OpType::Write, IoLevel::Library).is_some());
//! ```

pub use cluster;
pub use fs;
pub use ioeval_core as methodology;
pub use mpisim;
pub use netsim;
pub use simcore;
pub use storage;
pub use workloads;

/// Convenience re-exports for examples and applications.
pub mod prelude {
    pub use crate::cluster::{
        self, ClusterMachine, ClusterSpec, DeviceLayout, IoConfig, IoConfigBuilder, Mount,
        NetworkLayout,
    };
    pub use crate::methodology::advisor::{predict, rank_configs, Prediction};
    pub use crate::methodology::campaign::{
        run_campaign, run_campaign_supervised, AppFactory, Campaign, CampaignCell, CellOutcome,
        CellStore, MemStore, NoStore, SuperviseOptions,
    };
    pub use crate::methodology::charact::{
        characterize_app, characterize_system, CharactError, CharacterizeOptions,
    };
    pub use crate::methodology::eval::{evaluate, EvalError, EvalOptions, EvalReport, UsageRow};
    pub use crate::methodology::perf_table::{
        AccessMode, AccessType, IoLevel, OpType, PerfRow, PerfTable, PerfTableSet,
    };
    pub use crate::methodology::report;
    pub use crate::methodology::trace::{AppProfile, PhaseReport, ProfileSink};
    pub use crate::methodology::trace_export::ChromeTraceSink;
    pub use crate::simcore::{Abort, Bandwidth, Time, Watchdog, WatchdogSpec, GIB, KIB, MIB};
    pub use crate::workloads::{
        self, BtClass, BtIo, BtSubtype, FileType, Ior, IorOp, IozonePattern, IozoneRun, MadBench,
        Mdtest, MdtestVariant, Scenario,
    };
}
