//! Applying the methodology to *your own* cluster and application.
//!
//! The paper's pitch is that the methodology transfers: describe the
//! hardware, enumerate candidate I/O configurations, characterize, run your
//! application, and let the used-percentage table point at the bottleneck.
//! This example builds a hypothetical 16-node cluster, defines a custom
//! checkpoint-style MPI application *from raw ops*, and sweeps four
//! configurations — including the shared-vs-dedicated-network factor the
//! paper lists but could not vary on its testbeds.
//!
//! ```text
//! cargo run --release --example custom_cluster
//! ```

use cluster_io_eval::fs::FileId;
use cluster_io_eval::mpisim::{MpiOp, VecStream};
use cluster_io_eval::prelude::*;

/// A checkpoint/restart application: compute bursts, neighbour halo
/// exchanges, then every rank appends a checkpoint slab to a shared file.
fn checkpoint_app(ranks: usize, rounds: usize, slab: u64) -> Scenario {
    let file = FileId(0xCAFE);
    let mut programs: Vec<Box<dyn cluster_io_eval::mpisim::OpStream>> = Vec::new();
    for r in 0..ranks {
        let mut ops = vec![MpiOp::FileOpen { file, create: true }];
        for round in 0..rounds {
            ops.push(MpiOp::Compute(Time::from_millis(400)));
            // Halo exchange with both neighbours on a ring.
            let left = (r + ranks - 1) % ranks;
            let right = (r + 1) % ranks;
            let tag = round as u32;
            ops.push(MpiOp::Send {
                dst: right,
                bytes: 32 * 1024,
                tag,
            });
            ops.push(MpiOp::Recv { src: left, tag });
            // Global residual check before checkpointing.
            ops.push(MpiOp::Allreduce { bytes: 8 });
            // Checkpoint: rank-contiguous slabs, one barrier per round.
            let offset = (round * ranks + r) as u64 * slab;
            ops.push(MpiOp::WriteAt {
                file,
                offset,
                len: slab,
            });
            ops.push(MpiOp::Barrier);
        }
        ops.push(MpiOp::FileClose { file });
        programs.push(Box::new(VecStream::new(ops)));
    }
    Scenario {
        name: format!("checkpoint x{rounds} ({} slabs)", simcore_fmt(slab)),
        programs,
        mounts: vec![(file, Mount::NfsDirect)],
        prealloc: Vec::new(),
    }
}

fn simcore_fmt(b: u64) -> String {
    cluster_io_eval::simcore::fmt_bytes(b)
}

fn main() {
    // 1. Describe the hardware.
    let spec = ClusterSpec {
        name: "my-cluster".into(),
        compute_nodes: 16,
        node_ram: 4 * GIB,
        node_disk: cluster_io_eval::storage::DiskParams::sata_7200(250, 85),
        io_node_ram: 8 * GIB,
        server_disk: cluster_io_eval::storage::DiskParams::sata_7200(500, 95),
        fabric: cluster_io_eval::netsim::FabricParams::gigabit_ethernet(),
        seed: 0xD00D,
    };

    // 2. Candidate configurations (phase 2: the configurable factors).
    let candidates = vec![
        IoConfigBuilder::new(DeviceLayout::Jbod)
            .write_cache_mib(0)
            .name("jbod")
            .build(),
        IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .name("raid5/split-net")
            .build(),
        IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .network(NetworkLayout::Shared)
            .name("raid5/shared-net")
            .build(),
        IoConfigBuilder::new(DeviceLayout::Raid0 {
            disks: 4,
            stripe: 256 * KIB,
        })
        .name("raid0 (no redundancy)")
        .build(),
    ];

    // 3 + 4. Characterize every candidate, evaluate the application on
    // each, and validate the advisor — one call runs the whole loop.
    let app = || checkpoint_app(32, 6, 24 * MIB);
    let apps: Vec<AppFactory> = vec![("checkpoint", &app)];
    let campaign = run_campaign(&spec, &candidates, &apps, &CharacterizeOptions::quick());
    println!("{}", campaign.render());

    if let Some(err) = campaign.mean_prediction_error() {
        println!(
            "advisor predicted the I/O times within {:.0}% on average — good\n\
             enough to shortlist configurations without running the app on\n\
             each. Usage far below 100% at every level would indicate the\n\
             application (not the I/O system) is the limiter.",
            err * 100.0
        );
    }
}
