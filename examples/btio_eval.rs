//! NAS BT-IO across the Aohyper configurations — the paper's §III case
//! study: which I/O configuration suits BT-IO, and why is the `simple`
//! subtype unable to exploit the I/O system?
//!
//! ```text
//! cargo run --release --example btio_eval            # reduced class A
//! cargo run --release --example btio_eval -- --paper # class C (slower)
//! ```

use cluster_io_eval::prelude::*;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let spec = cluster::presets::aohyper();

    let btio = |subtype| {
        if paper {
            BtIo::new(BtClass::C, 16, subtype)
        } else {
            BtIo::new(BtClass::A, 16, subtype).with_dumps(8)
        }
    };

    let mut opts = CharacterizeOptions::quick();
    if paper {
        opts = CharacterizeOptions::paper();
    }

    println!(
        "NAS BT-IO class {} / 16 processes on {}\n",
        if paper { "C" } else { "A (reduced)" },
        spec.name
    );

    for config in cluster::config::aohyper_configs() {
        let tables = characterize_system(&spec, &config, &opts).expect("characterization");
        for subtype in [BtSubtype::Full, BtSubtype::Simple] {
            let rep = evaluate(
                &spec,
                &config,
                btio(subtype).scenario(),
                &tables,
                &EvalOptions::default(),
            )
            .expect("evaluation");
            let lib_w = rep
                .usage_summary(OpType::Write, IoLevel::Library)
                .unwrap_or(0.0);
            let lib_r = rep
                .usage_summary(OpType::Read, IoLevel::Library)
                .unwrap_or(0.0);
            println!(
                "{:<7} {:<7} exec {:>10}  io {:>10} ({:>5.1}%)  w {:>12}  r {:>12}  lib use w/r {:>6.1}%/{:.1}%",
                config.name,
                format!("{subtype:?}"),
                format!("{}", rep.exec_time),
                format!("{}", rep.io_time),
                rep.io_fraction() * 100.0,
                format!("{}", rep.write_rate),
                format!("{}", rep.read_rate),
                lib_w,
                lib_r,
            );
        }
    }

    println!(
        "\nReading the paper's conclusion off these rows: the full subtype\n\
         exploits the I/O system (usage near or above 100% at the library\n\
         level) and performs similarly on all three configurations, so the\n\
         choice is about availability, not speed; the simple subtype's tiny\n\
         strided operations leave most of the system idle."
    );
}
