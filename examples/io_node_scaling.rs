//! Sweeping the "number and placement of I/O nodes" factor.
//!
//! The paper lists the number/placement of I/O nodes among the configurable
//! factors of the I/O architecture but could not vary it on its testbeds
//! (it planned to use the SIMCAN simulator for that). Here the simulator
//! makes the sweep a loop: deploy a PVFS-like parallel filesystem over
//! 1, 2, 4 and 8 I/O server nodes and watch BT-IO's I/O time respond.
//!
//! ```text
//! cargo run --release --example io_node_scaling
//! ```

use cluster_io_eval::prelude::*;

fn main() {
    let spec = cluster::presets::aohyper();

    println!(
        "NAS BT-IO class A (reduced) / 16 procs on {}: PVFS I/O-server sweep\n",
        spec.name
    );
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>14} {:>14}",
        "servers", "exec", "io_time", "io%", "write rate", "read rate"
    );

    for servers in [1usize, 2, 4, 8] {
        let config = IoConfigBuilder::new(DeviceLayout::Jbod)
            .pfs(servers)
            .name(format!("pvfs-x{servers}"))
            .build();
        let bt = BtIo::new(BtClass::A, 16, BtSubtype::Full)
            .with_dumps(8)
            .on(Mount::Pfs);
        // Metrics only — no usage table needed for the sweep, so profile
        // the app directly instead of characterizing every deployment.
        let profile = characterize_app(&spec, &config, bt.scenario(), None).expect("profile");
        println!(
            "{:>10} {:>12} {:>12} {:>7.1}% {:>14} {:>14}",
            servers,
            format!("{}", profile.exec_time),
            format!("{}", profile.io_time),
            profile.io_time.as_secs_f64() / profile.exec_time.as_secs_f64() * 100.0,
            format!("{}", profile.write_rate()),
            format!("{}", profile.read_rate()),
        );
    }

    println!(
        "\nMore I/O servers buy bandwidth until the clients' own links (or\n\
         the compute between dumps) become the limit — the knee of this\n\
         curve is where adding I/O nodes stops paying, which is exactly the\n\
         question the paper's configuration-analysis phase asks."
    );
}
