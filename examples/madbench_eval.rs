//! MADbench2 on Aohyper — per-phase analysis (the paper's §IV-F): the same
//! configuration serves the S/W/C functions very differently, and the
//! "most suitable configuration" depends on which operation carries the
//! application's weight.
//!
//! ```text
//! cargo run --release --example madbench_eval            # 4 KPIX
//! cargo run --release --example madbench_eval -- --paper # 18 KPIX
//! ```

use cluster_io_eval::prelude::*;
use cluster_io_eval::workloads::madbench::markers;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let spec = cluster::presets::aohyper();

    let mb = |ft| {
        if paper {
            MadBench::new(16, ft)
        } else {
            MadBench::new(16, ft).with_kpix(4)
        }
    };
    let opts = if paper {
        CharacterizeOptions::paper()
    } else {
        CharacterizeOptions::quick()
    };

    println!(
        "MADbench2 ({} KPIX, 8 BIN, IOMODE=SYNC) / 16 processes on {}\n",
        if paper { 18 } else { 4 },
        spec.name
    );
    println!(
        "{:<7} {:<7} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>10}",
        "config", "type", "exec", "io", "S_w", "W_w", "W_r", "C_r"
    );

    for config in cluster::config::aohyper_configs() {
        let tables = characterize_system(&spec, &config, &opts).expect("characterization");
        for ft in [FileType::Unique, FileType::Shared] {
            let rep = evaluate(
                &spec,
                &config,
                mb(ft).scenario(),
                &tables,
                &EvalOptions::default(),
            )
            .expect("evaluation");
            let rate = |marker, op| {
                rep.profile
                    .per_marker
                    .iter()
                    .find(|m| m.marker == marker && m.op == op)
                    .map(|m| format!("{:.1}", m.rate.as_mib_per_sec()))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "{:<7} {:<7} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>10}",
                config.name,
                format!("{ft:?}"),
                format!("{}", rep.exec_time),
                format!("{}", rep.io_time),
                rate(markers::S, OpType::Write),
                rate(markers::W, OpType::Write),
                rate(markers::W, OpType::Read),
                rate(markers::C, OpType::Read),
            );
        }
    }

    println!(
        "\nS_w/W_w/W_r/C_r are the per-function transfer rates (MiB/s) the\n\
         paper plots in Fig. 17. RAID 5 provides the highest write rates, so\n\
         — as the paper concludes — it is the most suitable configuration\n\
         for MADbench2, whose weight is on the large sequential writes."
    );
}
