//! Quickstart: the three methodology phases on a small test cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. characterize the I/O system (performance tables per I/O-path level),
//! 2. characterize an application (NAS BT-IO),
//! 3. evaluate: run the application and compute the percentage of the
//!    characterized I/O capacity it actually uses at every level.

use cluster_io_eval::prelude::*;

fn main() {
    // The cluster under study and one I/O configuration (phase 2 of the
    // methodology is choosing candidates; here: a single JBOD).
    let spec = cluster::presets::test_cluster();
    let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();

    // ---- Phase 1a: system characterization -----------------------------
    let opts = CharacterizeOptions::quick();
    let tables = characterize_system(&spec, &config, &opts).expect("characterization");
    println!("{}", report::render_table_set(&tables));

    // ---- Phase 1b: application characterization ------------------------
    let app = BtIo::new(BtClass::S, 4, BtSubtype::Full)
        .with_dumps(4)
        .gflops(10.0);
    let profile = characterize_app(&spec, &config, app.scenario(), None).expect("profile");
    println!("=== Application characterization (NAS BT-IO class S) ===");
    println!("{}", report::render_app_profile(&profile));

    // ---- Phase 3: evaluation -------------------------------------------
    let app = BtIo::new(BtClass::S, 4, BtSubtype::Full)
        .with_dumps(4)
        .gflops(10.0);
    let rep = evaluate(
        &spec,
        &config,
        app.scenario(),
        &tables,
        &EvalOptions::default(),
    )
    .expect("evaluation");
    println!("=== Evaluation ===");
    println!(
        "execution time {}   I/O time {} ({:.1}% of runtime)",
        rep.exec_time,
        rep.io_time,
        rep.io_fraction() * 100.0
    );
    println!(
        "application rates: write {}   read {}",
        rep.write_rate, rep.read_rate
    );
    println!("\npercentage of characterized capacity used:");
    for op in [OpType::Write, OpType::Read] {
        for level in IoLevel::ALL {
            if let Some(pct) = rep.usage_summary(op, level) {
                println!("  {op:<5} @ {:<8} {pct:>7.1}%", level.label());
            }
        }
    }
}
